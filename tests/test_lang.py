"""Tests for the litmus-program fragment: memory views, AST, thread semantics, SC oracle."""

import pytest

from repro.lang import (
    INT16,
    INT32,
    INT8,
    UINT16,
    Exchange,
    IfEq,
    Load,
    Notify,
    Program,
    Register,
    Store,
    Thread,
    TypedAccess,
    Wait,
    interpret,
    new_data_view,
    new_shared_array_buffer,
    new_typed_array,
    program_paths,
    sc_outcomes,
    thread_paths,
)
from repro.lang.ast import DataViewAccess, outcome_matches
from repro.lang.thread_semantics import ThreadSemanticsError


class TestMemoryViews:
    def test_typed_array_byte_ranges(self):
        sab = new_shared_array_buffer("b", 16)
        view32 = new_typed_array("x", sab, INT32)
        view16 = new_typed_array("y", sab, INT16)
        assert list(view32.byte_range(1)) == [4, 5, 6, 7]
        assert list(view16.byte_range(3)) == [6, 7]
        assert view32.length == 4 and view16.length == 8

    def test_typed_array_bounds_checked(self):
        sab = new_shared_array_buffer("b", 8)
        view = new_typed_array("x", sab, INT32)
        with pytest.raises(IndexError):
            view.byte_range(2)

    def test_encode_decode_round_trip_signed(self):
        sab = new_shared_array_buffer("b", 8)
        view = new_typed_array("x", sab, INT32)
        assert view.decode(view.encode(-5)) == -5
        view8 = new_typed_array("c", sab, INT8)
        assert view8.decode(view8.encode(200)) == -56  # wraps into signed range

    def test_tearfree_classification(self):
        sab = new_shared_array_buffer("b", 16)
        assert new_typed_array("x", sab, INT32).tearfree
        from repro.lang import BIGINT64

        assert not new_typed_array("y", sab, BIGINT64).tearfree
        assert not new_data_view("d", sab).tearfree

    def test_data_view_unaligned_access(self):
        sab = new_shared_array_buffer("b", 8)
        dv = new_data_view("d", sab)
        access = DataViewAccess(dv, byte_offset=1, width=4)
        assert list(access.byte_range()) == [1, 2, 3, 4]
        assert not access.tearfree
        with pytest.raises(IndexError):
            DataViewAccess(dv, byte_offset=6, width=4).byte_range()

    def test_misaligned_typed_array_offset_rejected(self):
        sab = new_shared_array_buffer("b", 8)
        with pytest.raises(ValueError):
            new_typed_array("x", sab, INT32, byte_offset=2)


class TestAst:
    def _view(self):
        sab = new_shared_array_buffer("b", 8)
        return sab, new_typed_array("x", sab, INT32)

    def test_atomic_access_requires_atomic_capable_view(self):
        sab = new_shared_array_buffer("b", 8)
        dv = new_data_view("d", sab)
        access = DataViewAccess(dv, 0, 4)
        with pytest.raises(ValueError):
            Store(access, 1, atomic=True)
        with pytest.raises(ValueError):
            Load(Register("r"), access, atomic=True)

    def test_program_validation(self):
        sab, view = self._view()
        with pytest.raises(ValueError):
            Program(name="empty", buffers=(), threads=(Thread(()),))
        program = Program(
            name="ok",
            buffers=(sab,),
            threads=(Thread((Store(TypedAccess(view, 0), 1),)),),
        )
        assert program.thread_count == 1
        assert "SharedArrayBuffer" in program.describe()

    def test_uses_wait_notify_detection(self):
        sab, view = self._view()
        plain = Program(
            name="p", buffers=(sab,), threads=(Thread((Store(TypedAccess(view, 0), 1),)),)
        )
        waiting = Program(
            name="w",
            buffers=(sab,),
            threads=(
                Thread((IfEq(Register("r"), 0, then=(Wait(TypedAccess(view, 0), 0),)),)),
            ),
        )
        assert not plain.uses_wait_notify()
        assert waiting.uses_wait_notify()

    def test_outcome_matches_is_subset_semantics(self):
        assert outcome_matches({"0:r0": 1, "1:r1": 2}, {"0:r0": 1})
        assert not outcome_matches({"0:r0": 1}, {"0:r0": 2})
        assert not outcome_matches({}, {"0:r0": 0})


class TestThreadSemantics:
    def _setup(self):
        sab = new_shared_array_buffer("b", 8)
        view = new_typed_array("x", sab, INT32)
        return view

    def test_straight_line_thread_has_single_path(self):
        view = self._setup()
        thread = Thread((Store(TypedAccess(view, 0), 1), Load(Register("r"), TypedAccess(view, 1))))
        paths = thread_paths(thread, 0)
        assert len(paths) == 1
        assert len(paths[0].templates) == 2
        assert dict(paths[0].registers)["r"][0] == "event"

    def test_conditional_forks_paths_with_constraints(self):
        view = self._setup()
        thread = Thread(
            (
                Load(Register("r"), TypedAccess(view, 0), atomic=True),
                IfEq(Register("r"), 5, then=(Load(Register("s"), TypedAccess(view, 1)),)),
            )
        )
        paths = thread_paths(thread, 0)
        assert len(paths) == 2
        taken = [p for p in paths if len(p.templates) == 2][0]
        skipped = [p for p in paths if len(p.templates) == 1][0]
        assert taken.constraints[0].equal is True
        assert skipped.constraints[0].equal is False

    def test_branch_on_unassigned_register_rejected(self):
        view = self._setup()
        thread = Thread((IfEq(Register("r"), 0, then=()),))
        with pytest.raises(ThreadSemanticsError):
            thread_paths(thread, 0)

    def test_exchange_generates_rmw_template(self):
        view = self._setup()
        thread = Thread((Exchange(Register("r"), TypedAccess(view, 0), 7),))
        (path,) = thread_paths(thread, 0)
        template = path.templates[0]
        assert template.kind == "rmw"
        assert template.reads_memory and template.writes_memory

    def test_program_paths_take_products(self):
        view = self._setup()
        conditional = Thread(
            (
                Load(Register("r"), TypedAccess(view, 0), atomic=True),
                IfEq(Register("r"), 1, then=(Store(TypedAccess(view, 1), 2),)),
            )
        )
        program = Program(
            name="p",
            buffers=(view.buffer,),
            threads=(conditional, conditional),
        )
        assert len(list(program_paths(program))) == 4


class TestInterpreter:
    def test_message_passing_sc_outcomes(self):
        sab = new_shared_array_buffer("b", 8)
        view = new_typed_array("x", sab, INT32)
        msg, flag = TypedAccess(view, 0), TypedAccess(view, 1)
        program = Program(
            name="mp",
            buffers=(sab,),
            threads=(
                Thread((Store(msg, 3), Store(flag, 5, atomic=True))),
                Thread(
                    (
                        Load(Register("r0"), flag, atomic=True),
                        IfEq(Register("r0"), 5, then=(Load(Register("r1"), msg),)),
                    )
                ),
            ),
        )
        outcomes = {tuple(sorted(o.items())) for o in sc_outcomes(program)}
        assert (("1:r0", 5), ("1:r1", 3)) in outcomes
        assert (("1:r0", 0),) in outcomes
        assert (("1:r0", 5), ("1:r1", 0)) not in outcomes

    def test_exchange_is_atomic_under_sc(self):
        sab = new_shared_array_buffer("b", 4)
        view = new_typed_array("x", sab, INT32)
        loc = TypedAccess(view, 0)
        program = Program(
            name="xchg",
            buffers=(sab,),
            threads=(
                Thread((Exchange(Register("r0"), loc, 1),)),
                Thread((Exchange(Register("r1"), loc, 2),)),
            ),
        )
        outcomes = {tuple(sorted(o.items())) for o in sc_outcomes(program)}
        assert (("0:r0", 0), ("1:r1", 0)) not in outcomes
        assert (("0:r0", 0), ("1:r1", 1)) in outcomes
        assert (("0:r0", 2), ("1:r1", 0)) in outcomes

    def test_wait_notify_interpreter_terminates_or_sticks(self):
        sab = new_shared_array_buffer("x", 4)
        view = new_typed_array("x", sab, INT32)
        loc = TypedAccess(view, 0)
        program = Program(
            name="wn",
            buffers=(sab,),
            threads=(
                Thread((Wait(loc, 0), Load(Register("r0"), loc, atomic=True))),
                Thread((Store(loc, 42, atomic=True), Notify(loc, dest=Register("r1")))),
            ),
        )
        result = interpret(program)
        finished = {tuple(sorted(o.items())) for o in result.outcomes}
        # Under SC interleaving the waiter always ends up reading 42.
        assert all(dict(o)["0:r0"] == 42 for o in finished)
        # The notify-before-wait interleaving never gets stuck under SC
        # because the wait then observes 42 and does not suspend.
        assert result.stuck_outcomes == ()
