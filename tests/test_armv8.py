"""Tests for the mixed-size ARMv8 axiomatic and operational models (§4)."""

import pytest

from repro.armv8 import (
    ArmBarrier,
    ArmCtrl,
    ArmEvent,
    ArmEventKind,
    ArmLoad,
    ArmProgram,
    ArmRegister,
    ArmStore,
    ArmThread,
    BarrierKind,
    arm_allowed_outcomes,
    arm_operational_outcomes,
    arm_outcome_allowed,
    arm_thread_paths,
    flatten_thread,
    is_mixed_size_program,
    make_arm_init,
    validate_corpus,
    validate_program,
)
from repro.armv8.axiomatic import ArmExecution, arm_is_valid, arm_violations
from repro.core.relations import Relation

R = ArmRegister


def _matches(outcomes, spec):
    return any(all(o.get(k) == v for k, v in spec.items()) for o in outcomes)


def mp(release_acquire: bool) -> ArmProgram:
    return ArmProgram(
        name="mp",
        memory_size=8,
        threads=(
            ArmThread((ArmStore(1, 0, 4), ArmStore(1, 4, 4, release=release_acquire))),
            ArmThread(
                (ArmLoad(R("r0"), 4, 4, acquire=release_acquire), ArmLoad(R("r1"), 0, 4))
            ),
        ),
    )


def sb(with_dmb: bool) -> ArmProgram:
    def thread(store_addr, load_addr, register):
        instructions = [ArmStore(1, store_addr, 4)]
        if with_dmb:
            instructions.append(ArmBarrier(BarrierKind.FULL))
        instructions.append(ArmLoad(R(register), load_addr, 4))
        return ArmThread(tuple(instructions))

    return ArmProgram(
        name="sb", memory_size=8, threads=(thread(0, 4, "r0"), thread(4, 0, "r1"))
    )


class TestArmEvents:
    def test_event_attributes_and_value(self):
        event = ArmEvent(eid=1, tid=0, kind=ArmEventKind.WRITE, addr=4, data=(1, 0), release=True)
        assert event.is_release and not event.is_acquire
        assert event.value() == 1
        assert list(event.footprint) == [4, 5]

    def test_fence_requires_barrier_kind(self):
        with pytest.raises(ValueError):
            ArmEvent(eid=1, tid=0, kind=ArmEventKind.FENCE)

    def test_init_event(self):
        init = make_arm_init(8)
        assert init.is_init and init.size == 8


class TestArmProgramSemantics:
    def test_ctrl_block_adds_control_dependencies(self):
        thread = ArmThread(
            (
                ArmLoad(R("r0"), 0, 4, acquire=True),
                ArmCtrl(R("r0"), 1, body=(ArmStore(1, 4, 4),)),
            )
        )
        paths = arm_thread_paths(thread, 0)
        assert len(paths) == 2
        taken = [p for p in paths if len(p.templates) == 2][0]
        assert taken.templates[1].ctrl_sources == (taken.templates[0].key,)

    def test_store_from_register_records_data_dependency(self):
        thread = ArmThread((ArmLoad(R("r0"), 0, 4), ArmStore(R("r0"), 4, 4)))
        (path,) = arm_thread_paths(thread, 0)
        assert path.templates[1].data_sources == (path.templates[0].key,)

    def test_flatten_thread_guards_nested_blocks(self):
        thread = ArmThread(
            (
                ArmLoad(R("r0"), 0, 4),
                ArmCtrl(R("r0"), 1, body=(ArmStore(1, 4, 4),)),
            )
        )
        slots = flatten_thread(thread)
        assert len(slots) == 2
        assert slots[1].ctrl_conditions == (("r0", 1),)


class TestArmAxiomatic:
    def test_mp_plain_allows_stale_read(self):
        assert arm_outcome_allowed(mp(False), {"1:r0": 1, "1:r1": 0})

    def test_mp_release_acquire_forbids_stale_read(self):
        assert not arm_outcome_allowed(mp(True), {"1:r0": 1, "1:r1": 0})

    def test_sb_plain_allows_both_zero(self):
        assert arm_outcome_allowed(sb(False), {"0:r0": 0, "1:r1": 0})

    def test_sb_with_dmb_forbids_both_zero(self):
        assert not arm_outcome_allowed(sb(True), {"0:r0": 0, "1:r1": 0})

    def test_coherence_within_one_thread(self):
        program = ArmProgram(
            name="corr",
            memory_size=4,
            threads=(
                ArmThread((ArmStore(1, 0, 4),)),
                ArmThread((ArmLoad(R("r0"), 0, 4), ArmLoad(R("r1"), 0, 4))),
            ),
        )
        assert not arm_outcome_allowed(program, {"1:r0": 1, "1:r1": 0})

    def test_exclusive_pair_atomicity(self):
        program = ArmProgram(
            name="xchg",
            memory_size=4,
            threads=(
                ArmThread(
                    (
                        ArmLoad(R("r0"), 0, 4, acquire=True, exclusive=True),
                        ArmStore(1, 0, 4, release=True, exclusive=True),
                    )
                ),
                ArmThread(
                    (
                        ArmLoad(R("r1"), 0, 4, acquire=True, exclusive=True),
                        ArmStore(2, 0, 4, release=True, exclusive=True),
                    )
                ),
            ),
        )
        outcomes = arm_allowed_outcomes(program)
        assert not _matches(outcomes, {"0:r0": 0, "1:r1": 0})

    def test_violation_reporting_on_bad_execution(self):
        # A single-byte coherence cycle: two writes each coherence-before the other.
        init = make_arm_init(1)
        w1 = ArmEvent(eid=1, tid=0, kind=ArmEventKind.WRITE, addr=0, data=(1,))
        r1 = ArmEvent(eid=2, tid=0, kind=ArmEventKind.READ, addr=0, data=(0,))
        execution = ArmExecution(
            events=(init, w1, r1),
            po=Relation([(1, 2)]),
            rbf=frozenset({(0, 0, 2)}),
            co_by_byte=((0, (0, 1)),),
        )
        assert not arm_is_valid(execution)
        assert "internal" in arm_violations(execution)

    def test_mixed_size_halves_observable(self):
        program = ArmProgram(
            name="mixed",
            memory_size=4,
            threads=(
                ArmThread((ArmStore(0x00020001, 0, 4),)),
                ArmThread((ArmLoad(R("r0"), 0, 2), ArmLoad(R("r1"), 2, 2))),
            ),
        )
        outcomes = arm_allowed_outcomes(program)
        assert _matches(outcomes, {"1:r0": 1, "1:r1": 2})
        assert _matches(outcomes, {"1:r0": 0, "1:r1": 2})


class TestArmOperationalAndValidation:
    def test_operational_mp_plain_shows_relaxation(self):
        outcomes = arm_operational_outcomes(mp(False))
        assert _matches(outcomes, {"1:r0": 1, "1:r1": 0})

    def test_operational_respects_release_acquire(self):
        outcomes = arm_operational_outcomes(mp(True))
        assert not _matches(outcomes, {"1:r0": 1, "1:r1": 0})

    def test_operational_sb_with_dmb_is_sc(self):
        outcomes = arm_operational_outcomes(sb(True))
        assert not _matches(outcomes, {"0:r0": 0, "1:r1": 0})

    @pytest.mark.parametrize("program", [mp(False), mp(True), sb(False), sb(True)], ids=lambda p: p.name + str(id(p) % 7))
    def test_validation_soundness(self, program):
        verdict = validate_program(program)
        assert verdict.sound
        assert verdict.executions > 0

    def test_fig6b_operational_observes_paper_outcome_and_is_sound(self):
        program = ArmProgram(
            name="fig6b",
            memory_size=8,
            threads=(
                ArmThread((ArmStore(1, 0, 4, release=True), ArmLoad(R("W2"), 4, 4, acquire=True))),
                ArmThread(
                    (
                        ArmStore(1, 4, 4, release=True),
                        ArmStore(2, 4, 4, release=True),
                        ArmStore(2, 0, 4),
                        ArmLoad(R("W4"), 0, 4, acquire=True),
                    )
                ),
            ),
        )
        outcomes = arm_operational_outcomes(program)
        assert _matches(outcomes, {"0:W2": 1, "1:W4": 1})
        assert validate_program(program).sound

    def test_corpus_validation_aggregates(self):
        corpus = [mp(False), mp(True), sb(False), sb(True)]
        result = validate_corpus(corpus)
        assert result.sound
        assert result.programs == 4
        assert "sound" in result.summary()

    def test_mixed_size_detection(self):
        program = ArmProgram(
            name="mixed",
            memory_size=4,
            threads=(
                ArmThread((ArmStore(1, 0, 4),)),
                ArmThread((ArmLoad(R("r0"), 0, 2),)),
            ),
        )
        assert is_mixed_size_program(program)
        assert not is_mixed_size_program(mp(False))
