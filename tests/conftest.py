"""Tier-1 test configuration.

Registers the ``chaos`` marker for the slow end of the resilience suite
(subprocess kill/resume drills and long fault-injection sweeps).  Chaos
cases are deselected by default so the tier-1 run stays fast and
deterministic; opt in with ``--chaos`` or ``REPRO_RUN_CHAOS=1``::

    PYTHONPATH=src python -m pytest tests/ --chaos -q
"""

from __future__ import annotations

import os

import pytest

RUN_CHAOS_ENV = "REPRO_RUN_CHAOS"
_DISABLED_VALUES = {"", "0", "off", "no", "none", "disabled", "false"}


def pytest_addoption(parser):
    parser.addoption(
        "--chaos",
        action="store_true",
        default=False,
        help="also run chaos-marked resilience drills (kill/resume subprocess "
        "tests); default off to keep tier-1 fast",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "chaos: slow resilience drill (subprocess kill/resume, heavy fault "
        "sweeps); skipped unless --chaos or REPRO_RUN_CHAOS is set",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--chaos"):
        return
    if os.environ.get(RUN_CHAOS_ENV, "").strip().lower() not in _DISABLED_VALUES:
        return
    skip_chaos = pytest.mark.skip(
        reason="chaos drill: enable with --chaos or REPRO_RUN_CHAOS=1"
    )
    for item in items:
        if "chaos" in item.keywords:
            item.add_marker(skip_chaos)
