"""The static litmus analyzer: soundness, fast paths, pruning, stats plumbing.

The analyzer's one contract is *bit-identity*: with ``REPRO_ANALYZE`` on or
off, every verdict-producing API returns exactly the same answers — the
analyzer may only change how fast they arrive.  These tests enforce that
contract on the full catalogue and on a thousand generated programs, then
pin down the individual mechanisms (static race pairs, the SC fast path's
model gating, rf-pruning, dead-outcome rejection, budget preservation) and
the stats surfaced on reports.
"""

import contextlib
import itertools
import os

import pytest

from repro import analyze
from repro.analyze.races import STATS, StaticAccess
from repro.core.events import AccessMode
from repro.core.js_model import (
    ARMV8_FIX_MODEL,
    FINAL_MODEL,
    FINAL_MODEL_STRONG_TEAR,
    ORIGINAL_MODEL,
)
from repro.lang.ast import Load, Program, Register, Store, Thread, TypedAccess
from repro.lang.enumeration import (
    EnumerationBudgetExceeded,
    allowed_outcomes,
    outcome_allowed,
    program_is_data_race_free,
)
from repro.lang.memory import UINT8, new_shared_array_buffer, new_typed_array
from repro.litmus.catalogue import all_tests, by_name
from repro.litmus.runner import run_catalogue, run_test
from repro.search import SearchBounds, search_sc_drf_violation
from repro.search.shapes import generate_programs


@contextlib.contextmanager
def analyzer(value):
    """Run a block with ``REPRO_ANALYZE`` set to ``value``."""
    previous = os.environ.get(analyze.ANALYZE_ENV)
    os.environ[analyze.ANALYZE_ENV] = value
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(analyze.ANALYZE_ENV, None)
        else:
            os.environ[analyze.ANALYZE_ENV] = previous


def racy_program():
    """t0 reads then stores x, t1 stores x — all unordered, one shared byte."""
    sab = new_shared_array_buffer("x", 1)
    view = new_typed_array("x", sab, UINT8)
    loc = TypedAccess(view, 0)
    return Program(
        name="probe-racy",
        buffers=(sab,),
        threads=(
            Thread((Load(Register("r0"), loc, atomic=False), Store(loc, 1, atomic=False))),
            Thread((Store(loc, 2, atomic=False),)),
        ),
    )


RACE_FREE_CATALOGUE = {
    "fig13-wait-notify",
    "sb-sc",
    "lb-sc",
    "corr-sc",
    "2+2w-sc",
    "mp-sc-sc",
    "rmw-exchange",
}


class TestStaticAnalysis:
    def test_racy_program_accesses_and_pairs(self):
        analysis = analyze.analyze_program(racy_program())
        assert len(analysis.accesses) == 3
        assert analysis.race_pairs
        assert not analysis.definitely_race_free
        # Same-thread accesses never pair up (sb ⊆ hb).
        assert all(a.tid != b.tid for a, b in analysis.race_pairs)

    def test_all_sc_program_is_race_free(self):
        analysis = analyze.analyze_program(by_name("sb-sc").program)
        assert analysis.definitely_race_free
        assert all(a.mode is AccessMode.SEQCST for a in analysis.accesses)

    def test_wait_notify_is_flagged(self):
        analysis = analyze.analyze_program(by_name("fig13-wait-notify").program)
        assert analysis.definitely_race_free
        assert analysis.uses_wait_notify

    def test_catalogue_race_free_census(self):
        free = {
            test.name
            for test in all_tests()
            if analyze.analyze_program(test.program).definitely_race_free
        }
        assert free == RACE_FREE_CATALOGUE

    def test_analysis_is_memoized_per_program(self):
        program = racy_program()
        assert analyze.analyze_program(program) is analyze.analyze_program(program)

    def test_describe_mentions_verdict(self):
        text = analyze.analyze_program(racy_program()).describe()
        assert "race" in text

    def test_static_race_verdict_none_when_disabled(self):
        program = racy_program()
        with analyzer("off"):
            assert analyze.static_race_verdict(program) is None
        with analyzer("1"):
            assert analyze.static_race_verdict(program) is False
            assert analyze.static_race_verdict(by_name("sb-sc").program) is True


class TestFastPathGating:
    def test_model_gate(self):
        assert analyze.sc_fast_path_model(FINAL_MODEL)
        assert analyze.sc_fast_path_model(FINAL_MODEL_STRONG_TEAR)
        # Fig. 8 is a DRF program with a non-SC outcome under these models:
        # the SC fast path must never answer for them.
        assert not analyze.sc_fast_path_model(ORIGINAL_MODEL)
        assert not analyze.sc_fast_path_model(ARMV8_FIX_MODEL)

    def test_applies_only_without_budget_or_extra_asw(self):
        program = by_name("sb-sc").program
        assert analyze.sc_fast_path_applies(program, FINAL_MODEL)
        assert not analyze.sc_fast_path_applies(
            program, FINAL_MODEL, max_assignments=100
        )
        assert not analyze.sc_fast_path_applies(
            program, FINAL_MODEL, extra_asw=((1, 2),)
        )
        assert not analyze.sc_fast_path_applies(program, ORIGINAL_MODEL)
        assert not analyze.sc_fast_path_applies(racy_program(), FINAL_MODEL)

    def test_wait_notify_declines(self):
        # sc_outcomes only reports terminated interleavings, so a blocked
        # wait would be invisible to the fast path; it must stand aside.
        program = by_name("fig13-wait-notify").program
        assert not analyze.sc_fast_path_applies(program, FINAL_MODEL)

    def test_disabled_declines(self):
        with analyzer("off"):
            assert not analyze.sc_fast_path_applies(
                by_name("sb-sc").program, FINAL_MODEL
            )

    def test_fig8_verdicts_unchanged_by_analyzer(self):
        # The SC-DRF violation of Fig. 8 must still be found with the
        # analyzer on — its models are gated out of the fast path.
        test = by_name("fig8-sc-drf-violation")
        with analyzer("off"):
            off = [r.observed_allowed for r in run_test(test, cache=False).results]
        with analyzer("1"):
            on = [r.observed_allowed for r in run_test(test, cache=False).results]
        assert on == off


class TestBitIdentity:
    def test_catalogue_parity(self):
        for test in all_tests():
            with analyzer("off"):
                off = [r.observed_allowed for r in run_test(test, cache=False).results]
            with analyzer("1"):
                on = [r.observed_allowed for r in run_test(test, cache=False).results]
            assert on == off, test.name

    @pytest.mark.parametrize(
        "model,count",
        [(FINAL_MODEL, 1000), (ORIGINAL_MODEL, 300)],
        ids=["final", "original"],
    )
    def test_generated_program_parity(self, model, count):
        bounds = SearchBounds(
            threads=2,
            max_accesses_per_thread=2,
            max_total_accesses=4,
            locations=2,
            values=(1, 2),
            allow_unordered=True,
            guarded_observer=True,
        )
        for program in itertools.islice(generate_programs(bounds), count):
            with analyzer("off"):
                off_drf = program_is_data_race_free(program, model=model)
                off_outcomes = allowed_outcomes(program, model=model)
            with analyzer("1"):
                assert program_is_data_race_free(program, model=model) == off_drf
                assert allowed_outcomes(program, model=model) == off_outcomes
            specs = [dict(off_outcomes[0])] if off_outcomes else []
            if specs and specs[0]:
                # One allowed outcome and one statically-dead variant of it
                # (77 is outside the generator's value alphabet).
                specs.append({key: 77 for key in specs[0]})
            for spec in specs:
                with analyzer("off"):
                    off_allowed = outcome_allowed(program, spec, model)
                with analyzer("1"):
                    assert outcome_allowed(program, spec, model) == off_allowed

    def test_budget_exception_identical(self):
        # All analyzer interventions are gated on ``max_assignments is
        # None``: a budgeted enumeration must blow up identically, with the
        # budget charged from the unpruned assignment space.
        program = by_name("fig14-init-tearing").program
        with analyzer("off"):
            with pytest.raises(EnumerationBudgetExceeded) as off:
                allowed_outcomes(program, model=FINAL_MODEL, max_assignments=1)
        with analyzer("1"):
            with pytest.raises(EnumerationBudgetExceeded) as on:
                allowed_outcomes(program, model=FINAL_MODEL, max_assignments=1)
        assert str(on.value) == str(off.value)


class TestPruningFacts:
    def test_rf_pruning_fires_and_preserves_outcomes(self):
        program = racy_program()
        with analyzer("off"):
            off_outcomes = allowed_outcomes(program, model=FINAL_MODEL)
        with analyzer("1"):
            before = analyze.stats_snapshot()
            on_outcomes = allowed_outcomes(program, model=FINAL_MODEL)
            delta = analyze.stats_delta(before)
        assert on_outcomes == off_outcomes
        assert delta["pruned_rf_edges"] >= 1
        observed = {spec["0:r0"] for spec in on_outcomes}
        assert observed == {0, 2}  # never its own later store

    def test_dead_outcome_rejection(self):
        program = racy_program()
        spec = {"0:r0": 77}
        with analyzer("off"):
            off = outcome_allowed(program, spec, FINAL_MODEL)
        with analyzer("1"):
            before = analyze.stats_snapshot()
            on = outcome_allowed(program, spec, FINAL_MODEL)
            delta = analyze.stats_delta(before)
        assert on == off == False  # noqa: E712 - the verdict is the point
        assert delta["dead_outcomes"] == 1

    def test_pruning_disabled_under_budget(self):
        with analyzer("1"):
            assert analyze.rf_pruning_enabled()
            assert not analyze.rf_pruning_enabled(max_assignments=5)
        with analyzer("off"):
            assert not analyze.rf_pruning_enabled()


class TestStatsSurfacing:
    def test_catalogue_report_carries_analyzer_stats(self):
        with analyzer("1"):
            report = run_catalogue(["sb-sc", "sb-un"], cache=False)
        assert report.analyze_stats is not None
        assert report.analyze_stats["fast_path_hits"] >= 1
        assert "static analyzer:" in report.describe()

    def test_catalogue_report_without_analyzer(self):
        with analyzer("off"):
            report = run_catalogue(["sb-sc"], cache=False)
        assert report.analyze_stats is None
        assert "static analyzer:" not in report.describe()

    def test_search_report_carries_analyzer_stats(self):
        bounds = SearchBounds(max_programs=8)
        with analyzer("1"):
            report = search_sc_drf_violation(bounds, model=ORIGINAL_MODEL, cache=False)
        assert report.analyze_stats is not None
        assert set(report.analyze_stats) >= {"fast_path_hits", "pruned_rf_edges"}

    def test_stats_delta_only_counts_new_work(self):
        with analyzer("1"):
            analyze.analyze_program(racy_program())
            before = analyze.stats_snapshot()
            delta = analyze.stats_delta(before)
        assert all(value == 0 for value in delta.values())

    def test_static_access_describe(self):
        access = StaticAccess(
            tid=0, kind="write", mode=AccessMode.SEQCST, block="b", start=0, stop=4
        )
        assert "t0" in access.describe()
        assert "b[0:4]" in access.describe()
