"""Property-based tests over randomly generated litmus programs and executions.

These exercise cross-model invariants the paper relies on:

* every outcome the SC oracle produces is allowed by every JavaScript model
  variant (the models are weaker than SC);
* the mixed-size → uni-size reduction agrees on reduction-applicable
  executions;
* the §4.1 soundness direction holds for randomly generated ARM programs;
* the Fig. 10 rule never forbids an execution whose SC-atomics windows are
  empty (degenerate single-threaded programs are always allowed).
"""

from hypothesis import given, settings, strategies as st

from repro.armv8 import ArmLoad, ArmProgram, ArmRegister, ArmStore, ArmThread, validate_program
from repro.core.js_model import ALL_MODELS, FINAL_MODEL, exists_valid_total_order
from repro.core.unisize import reduction_agrees, reduction_applicable
from repro.lang.ast import Load, Program, Register, Store, Thread, TypedAccess
from repro.lang.enumeration import allowed_outcomes, ground_executions
from repro.lang.interpreter import sc_outcomes
from repro.lang.memory import INT16, INT32, new_shared_array_buffer, new_typed_array

_BUFFER = new_shared_array_buffer("b", 8)
_WIDE = new_typed_array("b", _BUFFER, INT32)
_NARROW = new_typed_array("h", _BUFFER, INT16)


@st.composite
def js_statements(draw, allow_mixed=False):
    atomic = draw(st.booleans())
    if allow_mixed and draw(st.booleans()):
        view, max_index = _NARROW, 3
        atomic = atomic and True
    else:
        view, max_index = _WIDE, 1
    access = TypedAccess(view, draw(st.integers(0, max_index)))
    if draw(st.booleans()):
        return Store(access, draw(st.integers(1, 2)), atomic=atomic)
    name = f"r{draw(st.integers(0, 2))}"
    return Load(Register(name), access, atomic=atomic)


@st.composite
def js_programs(draw, allow_mixed=False):
    threads = []
    for _tid in range(2):
        statements = draw(
            st.lists(js_statements(allow_mixed=allow_mixed), min_size=1, max_size=2)
        )
        # Register names must be unique per thread for outcomes to be stable.
        renamed = []
        for i, stmt in enumerate(statements):
            if isinstance(stmt, Load):
                renamed.append(Load(Register(f"r{i}"), stmt.access, atomic=stmt.atomic))
            else:
                renamed.append(stmt)
        threads.append(Thread(tuple(renamed)))
    return Program(name="prop", buffers=(_BUFFER,), threads=tuple(threads))


@settings(max_examples=20, deadline=None)
@given(js_programs())
def test_sc_outcomes_are_allowed_by_every_model(program):
    sc = sc_outcomes(program)
    for model in ALL_MODELS:
        allowed = {tuple(sorted(o.items())) for o in allowed_outcomes(program, model)}
        for outcome in sc:
            assert tuple(sorted(outcome.items())) in allowed, model.name


@settings(max_examples=20, deadline=None)
@given(js_programs(allow_mixed=True))
def test_reduction_agreement_on_generated_programs(program):
    for ground in ground_executions(program):
        execution = ground.execution
        if not reduction_applicable(execution):
            continue
        tot = exists_valid_total_order(execution, FINAL_MODEL)
        witness = tot if tot is not None else tuple(sorted(execution.eids))
        assert reduction_agrees(execution.with_witness(tot=witness), FINAL_MODEL)


@settings(max_examples=20, deadline=None)
@given(js_programs())
def test_final_model_allows_at_least_one_outcome(program):
    # Every program has at least one observable behaviour (e.g. the SC one).
    assert allowed_outcomes(program, FINAL_MODEL)


@st.composite
def arm_programs(draw):
    threads = []
    for _tid in range(2):
        instructions = []
        for i in range(draw(st.integers(1, 2))):
            addr = draw(st.sampled_from([0, 4]))
            ordered = draw(st.booleans())
            if draw(st.booleans()):
                instructions.append(ArmStore(draw(st.integers(1, 2)), addr, 4, release=ordered))
            else:
                instructions.append(
                    ArmLoad(ArmRegister(f"r{i}"), addr, 4, acquire=ordered)
                )
        threads.append(ArmThread(tuple(instructions)))
    return ArmProgram(name="prop-arm", threads=tuple(threads), memory_size=8)


@settings(max_examples=15, deadline=None)
@given(arm_programs())
def test_armv8_axiomatic_is_sound_wrt_operational(program):
    verdict = validate_program(program)
    assert verdict.sound
