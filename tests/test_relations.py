"""Unit and property-based tests for the relation-algebra toolkit."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.relations import (
    Relation,
    linear_extensions,
    some_linear_extension,
    strict_total_orders,
    topological_sort,
)


def test_empty_relation_is_falsy():
    assert not Relation.empty()
    assert len(Relation.empty()) == 0


def test_union_intersection_difference():
    a = Relation([(1, 2), (2, 3)])
    b = Relation([(2, 3), (3, 4)])
    assert (a | b).pairs == {(1, 2), (2, 3), (3, 4)}
    assert (a & b).pairs == {(2, 3)}
    assert (a - b).pairs == {(1, 2)}


def test_compose():
    a = Relation([(1, 2), (2, 3)])
    b = Relation([(2, 10), (3, 11)])
    assert a.compose(b).pairs == {(1, 10), (2, 11)}


def test_inverse():
    a = Relation([(1, 2), (3, 4)])
    assert a.inverse().pairs == {(2, 1), (4, 3)}


def test_transitive_closure_chain():
    chain = Relation([(1, 2), (2, 3), (3, 4)])
    closure = chain.transitive_closure()
    assert (1, 4) in closure
    assert (1, 3) in closure
    assert (4, 1) not in closure


def test_transitive_closure_cycle_keeps_self_loops():
    cycle = Relation([(1, 2), (2, 1)])
    closure = cycle.transitive_closure()
    assert (1, 1) in closure and (2, 2) in closure


def test_acyclicity():
    assert Relation([(1, 2), (2, 3)]).is_acyclic()
    assert not Relation([(1, 2), (2, 3), (3, 1)]).is_acyclic()
    assert not Relation([(1, 1)]).is_acyclic()


def test_restrict_and_filter():
    rel = Relation([(1, 2), (2, 3), (3, 4)])
    assert rel.restrict(domain={1, 2}).pairs == {(1, 2), (2, 3)}
    assert rel.restrict(codomain={4}).pairs == {(3, 4)}
    assert rel.filter(lambda a, b: a + b > 5).pairs == {(3, 4)}


def test_from_total_order():
    rel = Relation.from_total_order([1, 2, 3])
    assert rel.pairs == {(1, 2), (1, 3), (2, 3)}
    assert rel.is_strict_total_order_over([1, 2, 3])


def test_is_strict_total_order_rejects_partial():
    rel = Relation([(1, 2)])
    assert not rel.is_strict_total_order_over([1, 2, 3])


def test_is_functional():
    assert Relation([(1, 2), (3, 4)]).is_functional()
    assert not Relation([(1, 2), (1, 3)]).is_functional()


def test_topological_sort_respects_order():
    order = Relation([(1, 2), (2, 3)])
    result = topological_sort([3, 2, 1], order)
    assert result is not None
    assert result.index(1) < result.index(2) < result.index(3)


def test_topological_sort_detects_cycle():
    assert topological_sort([1, 2], Relation([(1, 2), (2, 1)])) is None
    assert some_linear_extension([1, 2], Relation([(1, 2), (2, 1)])) is None


def test_linear_extensions_of_empty_order_are_permutations():
    extensions = set(linear_extensions([1, 2, 3], Relation()))
    assert extensions == set(itertools.permutations([1, 2, 3]))


def test_linear_extensions_respect_constraints():
    order = Relation([(1, 2)])
    for extension in linear_extensions([1, 2, 3], order):
        assert extension.index(1) < extension.index(2)


def test_strict_total_orders_count():
    assert len(list(strict_total_orders([1, 2, 3]))) == 6


# ---------------------------------------------------------------------------
# property-based tests
# ---------------------------------------------------------------------------

small_relations = st.sets(
    st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=12
).map(Relation)


@settings(max_examples=60, deadline=None)
@given(small_relations)
def test_transitive_closure_is_transitive(rel):
    closure = rel.transitive_closure()
    assert closure.is_transitive()
    assert closure.contains_relation(rel)


@settings(max_examples=60, deadline=None)
@given(small_relations, small_relations)
def test_union_is_commutative_and_contains_both(a, b):
    union = a | b
    assert union == b | a
    assert union.contains_relation(a) and union.contains_relation(b)


@settings(max_examples=60, deadline=None)
@given(small_relations)
def test_inverse_is_involutive(rel):
    assert rel.inverse().inverse() == rel


@settings(max_examples=40, deadline=None)
@given(st.permutations(list(range(5))))
def test_total_order_relation_round_trip(order):
    rel = Relation.from_total_order(order)
    assert rel.is_strict_total_order_over(order)
    assert rel.is_acyclic()


@settings(max_examples=40, deadline=None)
@given(small_relations)
def test_linear_extension_exists_iff_acyclic(rel):
    # Self-loops are ignored when extending (a strict order cannot contain
    # them), so the acyclicity that matters is that of the irreflexive part.
    elements = sorted(set(range(6)) | set(rel.elements()))
    extension = some_linear_extension(elements, rel)
    irreflexive = Relation([p for p in rel if p[0] != p[1]])
    if irreflexive.is_acyclic():
        assert extension is not None
        order = Relation.from_total_order(extension)
        assert order.contains_relation(irreflexive)
    else:
        assert extension is None
