"""Tests for data races, the SC oracle on executions, the uni-size model and Thm 6.1."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.data_race import data_races, is_data_race, is_race_free_execution
from repro.core.events import Event, SEQCST, UNORDERED, make_init_event
from repro.core.execution import CandidateExecution
from repro.core.js_model import FINAL_MODEL, ORIGINAL_MODEL, exists_valid_total_order, is_valid
from repro.core.sc import is_sequentially_consistent, sc_witness
from repro.core.theorems import check_internal_sc_drf, check_unisize_reduction
from repro.core.unisize import (
    reduction_agrees,
    reduction_applicable,
    same_location,
    unisize_is_valid,
)
from repro.lang.enumeration import ground_executions
from repro.litmus.catalogue import (
    fig1_message_passing,
    fig8_sc_drf_violation,
    load_buffering,
    store_buffering,
)


def _bytes(value, width=4):
    return tuple((value & ((1 << (8 * width)) - 1)).to_bytes(width, "little"))


def write(eid, tid, index, value, width=4, mode=SEQCST):
    return Event(eid=eid, tid=tid, ord=mode, block="b", index=index, writes=_bytes(value, width))


def read(eid, tid, index, value, width=4, mode=SEQCST):
    return Event(eid=eid, tid=tid, ord=mode, block="b", index=index, reads=_bytes(value, width))


class TestDataRace:
    def test_unordered_overlapping_write_read_races(self):
        init = make_init_event("b", 4)
        w0 = write(1, 0, 0, 1, mode=UNORDERED)
        r0 = read(2, 1, 0, 0, mode=UNORDERED)
        execution = CandidateExecution.build(
            events=[init, w0, r0], rbf={(k, 0, 2) for k in range(4)}, tot=[0, 1, 2]
        )
        races = data_races(execution, FINAL_MODEL)
        assert (1, 2) in races

    def test_same_range_seqcst_pair_does_not_race(self):
        init = make_init_event("b", 4)
        w0 = write(1, 0, 0, 1, mode=SEQCST)
        r0 = read(2, 1, 0, 1, mode=SEQCST)
        execution = CandidateExecution.build(
            events=[init, w0, r0], rbf={(k, 1, 2) for k in range(4)}, tot=[0, 1, 2]
        )
        assert is_race_free_execution(execution, FINAL_MODEL)

    def test_mixed_size_seqcst_accesses_race(self):
        # Differently-ranged SeqCst accesses still race (Fig. 7's range clause).
        init = make_init_event("b", 4)
        wide = write(1, 0, 0, 1, width=4, mode=SEQCST)
        narrow = read(2, 1, 0, 1, width=2, mode=SEQCST)
        execution = CandidateExecution.build(
            events=[init, wide, narrow], rbf={(0, 1, 2), (1, 1, 2)}, tot=[0, 1, 2]
        )
        hb = FINAL_MODEL.happens_before(execution)
        assert is_data_race(wide, narrow, hb)

    def test_hb_ordered_accesses_do_not_race(self):
        init = make_init_event("b", 4)
        w0 = write(1, 0, 0, 1, mode=UNORDERED)
        r0 = read(2, 0, 0, 1, mode=UNORDERED)
        execution = CandidateExecution.build(
            events=[init, w0, r0], sb=[(1, 2)], rbf={(k, 1, 2) for k in range(4)}, tot=[0, 1, 2]
        )
        assert is_race_free_execution(execution, FINAL_MODEL)


class TestSequentialConsistencyOfExecutions:
    def test_sc_witness_for_message_passing(self):
        init = make_init_event("b", 8)
        data = write(1, 0, 0, 3, mode=UNORDERED)
        flag = write(2, 0, 4, 5, mode=SEQCST)
        flag_r = read(3, 1, 4, 5, mode=SEQCST)
        data_r = read(4, 1, 0, 3, mode=UNORDERED)
        rbf = {(k, 1, 4) for k in range(4)} | {(k, 2, 3) for k in range(4, 8)}
        execution = CandidateExecution.build(
            events=[init, data, flag, flag_r, data_r], sb=[(1, 2), (3, 4)], rbf=rbf, tot=[0, 1, 2, 3, 4]
        )
        assert is_sequentially_consistent(execution)
        witness = sc_witness(execution)
        assert witness is not None and witness[0] == 0

    def test_non_sc_execution_detected(self):
        # Both threads read 0 although both wrote first (SB relaxed outcome).
        init = make_init_event("b", 8)
        w_x = write(1, 0, 0, 1, mode=UNORDERED)
        r_y = read(2, 0, 4, 0, mode=UNORDERED)
        w_y = write(3, 1, 4, 1, mode=UNORDERED)
        r_x = read(4, 1, 0, 0, mode=UNORDERED)
        rbf = {(k, 0, 2) for k in range(4, 8)} | {(k, 0, 4) for k in range(4)}
        execution = CandidateExecution.build(
            events=[init, w_x, r_y, w_y, r_x], sb=[(1, 2), (3, 4)], rbf=rbf, tot=[0, 1, 2, 3, 4]
        )
        assert not is_sequentially_consistent(execution)


class TestUniSizeModel:
    def test_same_location_predicate(self):
        a = write(1, 0, 0, 1)
        b = read(2, 1, 0, 1)
        c = read(3, 1, 0, 1, width=2)
        assert same_location(a, b)
        assert not same_location(a, c)

    def test_reduction_agrees_on_program_executions(self):
        program = fig1_message_passing().program
        checked = 0
        for ground in ground_executions(program):
            execution = ground.execution
            if not reduction_applicable(execution):
                continue
            tot = exists_valid_total_order(execution, FINAL_MODEL)
            if tot is None:
                # also check agreement on some invalid executions with an arbitrary tot
                execution = execution.with_witness(tot=sorted(execution.eids))
            else:
                execution = execution.with_witness(tot=tot)
            assert reduction_agrees(execution, FINAL_MODEL)
            checked += 1
        assert checked > 0

    def test_unisize_validity_of_simple_mp_execution(self):
        init = make_init_event("b", 8)
        data = write(1, 0, 0, 3, mode=UNORDERED)
        flag = write(2, 0, 4, 5, mode=SEQCST)
        flag_r = read(3, 1, 4, 5, mode=SEQCST)
        stale = read(4, 1, 0, 0, mode=UNORDERED)
        rbf = {(k, 0, 4) for k in range(4)} | {(k, 2, 3) for k in range(4, 8)}
        execution = CandidateExecution.build(
            events=[init, data, flag, flag_r, stale], sb=[(1, 2), (3, 4)], rbf=rbf, tot=[0, 1, 2, 3, 4]
        )
        assert not unisize_is_valid(execution)


class TestBoundedTheorems:
    def _valid_executions(self, program, model):
        for ground in ground_executions(program):
            tot = exists_valid_total_order(ground.execution, model)
            if tot is not None:
                yield ground.execution.with_witness(tot=tot)

    def test_internal_sc_drf_holds_for_final_model_on_catalogue_programs(self):
        programs = [
            fig1_message_passing().program,
            fig8_sc_drf_violation().program,
            store_buffering(True).program,
        ]
        executions = [
            execution
            for program in programs
            for execution in self._valid_executions(program, FINAL_MODEL)
        ]
        report = check_internal_sc_drf(executions, FINAL_MODEL)
        assert report.holds
        assert report.relevant > 0

    def test_internal_sc_drf_fails_for_original_model_on_fig8(self):
        program = fig8_sc_drf_violation().program
        executions = list(self._valid_executions(program, ORIGINAL_MODEL))
        report = check_internal_sc_drf(executions, ORIGINAL_MODEL)
        assert not report.holds

    def test_unisize_reduction_bounded_check(self):
        program = load_buffering(False).program
        executions = list(self._valid_executions(program, FINAL_MODEL))
        report = check_unisize_reduction(executions, FINAL_MODEL)
        assert report.holds
        assert report.checked == len(executions)
