"""The dispatch layer: sharded sweeps and the persistent verdict cache.

Covers the ISSUE-2 acceptance points: cache hit/miss semantics,
invalidation on a semantics-revision change, corrupt/partial cache files
falling back to recompute, and parallel/cached results being bit-identical
to the serial ones (checked against the recorded golden catalogue verdicts
where applicable).
"""

import json
from pathlib import Path

import pytest

from repro.compile import check_corpus_compilation
from repro.core import FINAL_MODEL, ORIGINAL_MODEL
from repro.dispatch import (
    MISS,
    VerdictCache,
    fingerprint,
    parallel_map,
    program_fingerprint,
    resolve_cache,
    resolve_workers,
    shard_ranges,
    sized_shard_ranges,
)
from repro.litmus.catalogue import by_name
from repro.litmus.runner import run_catalogue, run_tests, spec_allowed
from repro.search import (
    SearchBounds,
    search_compilation_violation,
    search_sc_drf_violation,
)
from repro.search.shapes import generate_programs, program_count

GOLDEN_PATH = Path(__file__).parent / "data" / "catalogue_verdicts.json"

# A fast, representative catalogue subset (atomic + mixed-size + relaxed).
FAST_TESTS = ["sb-sc", "lb-sc", "corr-un", "mp-un-sc", "mixed-size-overlap"]

# A tiny shape space: 10 programs, all checked in well under a second.
TINY_BOUNDS = SearchBounds(
    threads=2,
    max_accesses_per_thread=1,
    max_total_accesses=2,
    locations=1,
    values=(1,),
    guarded_observer=False,
)

# The §5.4 bound that contains the Fig. 8 counter-example.
SC_DRF_BOUNDS = SearchBounds(
    threads=2,
    max_accesses_per_thread=2,
    max_total_accesses=4,
    locations=1,
    values=(1, 2),
    guarded_observer=True,
)


def _golden():
    with GOLDEN_PATH.open() as handle:
        return json.load(handle)


def _golden_key(test_name, expectation):
    return "|".join(
        (
            test_name,
            expectation.model,
            json.dumps(sorted(expectation.spec_dict.items())),
        )
    )


# ---------------------------------------------------------------------------
# cache semantics
# ---------------------------------------------------------------------------


class TestVerdictCache:
    def test_miss_then_hit(self, tmp_path):
        cache = VerdictCache(tmp_path)
        key = cache.key("unit", "some", "material")
        assert cache.get(key) is MISS
        cache.put(key, True)
        assert cache.get(key) is True
        # A fresh handle over the same directory sees the entry (persistence).
        again = VerdictCache(tmp_path)
        assert again.get(key) is True
        assert again.hits == 1

    def test_falsy_verdicts_are_not_misses(self, tmp_path):
        cache = VerdictCache(tmp_path)
        key = cache.key("unit", "falsy")
        cache.put(key, False)
        assert cache.get(key) is False

    def test_revision_change_invalidates(self, tmp_path):
        old = VerdictCache(tmp_path, revision="rev-A")
        old.put(old.key("unit", "payload"), True)
        new = VerdictCache(tmp_path, revision="rev-B")
        # Same key material, new revision: the old entry is unreachable.
        assert new.get(new.key("unit", "payload")) is MISS

    @pytest.mark.parametrize(
        "garbage",
        [
            b"not json at all",
            b'{"key": "truncated...',
            b'{"unexpected": "schema"}',
            b'{"key": "somebody-else", "verdict": true}',
            b"",
        ],
        ids=["garbage", "partial", "foreign-schema", "wrong-key", "empty"],
    )
    def test_corrupt_file_falls_back_to_recompute(self, tmp_path, garbage):
        cache = VerdictCache(tmp_path)
        key = cache.key("unit", "corruptible")
        cache.put(key, True)
        path = cache._path(key)
        path.write_bytes(garbage)
        assert cache.get(key) is MISS
        # get_or_compute repairs the entry.
        assert cache.get_or_compute(key, lambda: "recomputed") == "recomputed"
        assert cache.get(key) == "recomputed"

    def test_get_or_compute_skips_compute_on_hit(self, tmp_path):
        cache = VerdictCache(tmp_path)
        key = cache.key("unit", "memo")
        cache.put(key, 41)

        def explode():
            raise AssertionError("should not be recomputed on a hit")

        assert cache.get_or_compute(key, explode) == 41

    def test_spec_roundtrip(self, tmp_path):
        cache = VerdictCache(tmp_path, revision="rev-X")
        clone = VerdictCache.from_spec(cache.spec)
        assert (clone.directory, clone.revision) == (cache.directory, cache.revision)
        assert VerdictCache.from_spec(None) is None

    def test_resolve_cache(self, tmp_path, monkeypatch):
        cache = VerdictCache(tmp_path)
        assert resolve_cache(cache) is cache
        assert resolve_cache(False) is None
        monkeypatch.delenv("REPRO_VERDICT_CACHE", raising=False)
        assert resolve_cache(None) is None
        monkeypatch.setenv("REPRO_VERDICT_CACHE", str(tmp_path))
        env_cache = resolve_cache(None)
        assert env_cache is not None and env_cache.directory == tmp_path
        monkeypatch.setenv("REPRO_VERDICT_CACHE", "off")
        assert resolve_cache(None) is None


class TestFingerprints:
    def test_program_fingerprint_is_structural(self):
        a = next(generate_programs(TINY_BOUNDS, 3, 4))
        b = next(generate_programs(TINY_BOUNDS, 3, 4))
        assert a is not b
        assert program_fingerprint(a) == program_fingerprint(b)

    def test_program_fingerprint_ignores_name(self):
        import dataclasses

        program = next(generate_programs(TINY_BOUNDS, 3, 4))
        renamed = dataclasses.replace(program, name="renamed", description="other")
        assert program_fingerprint(program) == program_fingerprint(renamed)

    def test_distinct_programs_fingerprint_differently(self):
        fingerprints = {
            program_fingerprint(p) for p in generate_programs(TINY_BOUNDS)
        }
        assert len(fingerprints) == program_count(TINY_BOUNDS)

    def test_model_configs_fingerprint_differently(self):
        assert fingerprint(FINAL_MODEL) != fingerprint(ORIGINAL_MODEL)

    def test_program_fingerprint_is_memoised_per_object(self):
        program = next(generate_programs(TINY_BOUNDS, 3, 4))
        first = program_fingerprint(program)
        assert program._fingerprint_memo == first
        # The memo is served back, and never leaks into the structural hash
        # (a poisoned memo would surface here as a changed fingerprint).
        object.__setattr__(program, "_fingerprint_memo", "poisoned")
        assert program_fingerprint(program) == "poisoned"
        clone = next(generate_programs(TINY_BOUNDS, 3, 4))
        assert program_fingerprint(clone) == first


# ---------------------------------------------------------------------------
# pool plumbing
# ---------------------------------------------------------------------------


def _square(x):
    return x * x


class TestPool:
    def test_parallel_map_preserves_order(self):
        items = list(range(23))
        assert parallel_map(_square, items, workers=3) == [x * x for x in items]

    def test_serial_fallback(self):
        assert parallel_map(_square, [3], workers=8) == [9]
        assert parallel_map(_square, [], workers=8) == []

    def test_resolve_workers_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) == 1
        assert resolve_workers(6) == 6
        assert resolve_workers(0) == 1
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(None) == 3

    def test_resolve_workers_auto_uses_cpu_count(self, monkeypatch):
        import os

        monkeypatch.setenv("REPRO_WORKERS", "auto")
        assert resolve_workers(None) == max(1, os.cpu_count() or 1)
        monkeypatch.setenv("REPRO_WORKERS", "AUTO")
        assert resolve_workers(None) == max(1, os.cpu_count() or 1)

    def test_resolve_workers_warns_once_on_unparseable(self, monkeypatch):
        import warnings

        from repro.dispatch import pool

        monkeypatch.setattr(pool, "_warned_workers_values", set())
        monkeypatch.setenv("REPRO_WORKERS", "4x")
        with pytest.warns(RuntimeWarning, match="4x"):
            assert resolve_workers(None) == 1
        # The second resolution of the same value stays silent (one-shot).
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_workers(None) == 1
        # A *different* bad value warns again.
        monkeypatch.setenv("REPRO_WORKERS", "junk")
        with pytest.warns(RuntimeWarning, match="junk"):
            assert resolve_workers(None) == 1

    def test_shard_ranges_cover_exactly(self):
        for total, workers in [(0, 4), (1, 4), (10, 3), (252, 2), (7, 100)]:
            ranges = shard_ranges(total, workers)
            covered = [i for (s, t) in ranges for i in range(s, t)]
            assert covered == list(range(total))

    def test_sized_shard_ranges_cover_exactly(self):
        rng_cases = [
            (0, 4, None),
            (1, 4, [5.0]),
            (10, 3, [1.0] * 10),
            (252, 4, [4 ** (2 + i % 5) for i in range(252)]),
            (7, 100, [0.0] * 7),  # zero cost degrades to the static split
        ]
        for total, workers, costs in rng_cases:
            ranges = sized_shard_ranges(total, workers, costs)
            covered = [i for (s, t) in ranges for i in range(s, t)]
            assert covered == list(range(total))

    def test_sized_shard_ranges_tapers_toward_the_tail(self):
        # A size-sorted, exponentially tail-heavy cost profile: the head
        # chunk batches many cheap items, tail chunks hold only a few
        # expensive ones, and no chunk carries much more than a worker
        # share of the estimated cost.
        costs = [4 ** (1 + i // 250) for i in range(1000)]
        ranges = sized_shard_ranges(1000, 4, costs)
        lengths = [stop - start for (start, stop) in ranges]
        assert lengths[0] > lengths[-1]
        chunk_costs = [sum(costs[s:t]) for (s, t) in ranges]
        assert max(chunk_costs) <= sum(costs) / 4 + max(costs)

    def test_sized_shard_ranges_without_costs_is_static(self):
        assert sized_shard_ranges(100, 4) == shard_ranges(100, 4)

    def test_sized_shard_ranges_short_costs_degrade_to_static(self):
        # A costs sequence shorter than total used to raise IndexError
        # mid-chunking; it now degrades to the static split.
        short = [1.0] * 10
        assert sized_shard_ranges(100, 4, short) == shard_ranges(100, 4)

    def test_sized_shard_ranges_long_costs_are_clamped(self):
        costs = [4 ** (1 + i // 25) for i in range(100)]
        padded = costs + [10 ** 9] * 50  # stray tail must not skew the taper
        assert sized_shard_ranges(100, 4, padded) == sized_shard_ranges(
            100, 4, costs
        )
        covered = [
            i for (s, t) in sized_shard_ranges(100, 4, padded) for i in range(s, t)
        ]
        assert covered == list(range(100))

    def test_cost_hints_length_matches_program_count(self):
        from repro.search.shapes import program_cost_hints

        for bounds in [
            TINY_BOUNDS,
            SearchBounds(max_programs=7),
            SearchBounds(max_programs=None),
        ]:
            for kind in ("js", "arm-compilation"):
                hints = program_cost_hints(bounds, kind=kind)
                assert len(hints) == program_count(bounds)

    def test_parallel_map_chunks_by_actual_pool_size(self, monkeypatch):
        # 100 requested workers over 8 items: chunks must be sized for the
        # 8-process pool actually built, not the requested 100 (which would
        # floor every chunk at one item and defeat batching on real pools).
        # The legacy bare-Pool engine is the one that chunks; the supervised
        # default dispatches one task per worker round-trip instead.
        from repro.dispatch import pool

        seen = []
        real = pool._default_chunk_size

        def probe(total, workers):
            seen.append((total, workers))
            return real(total, workers)

        monkeypatch.setattr(pool, "_default_chunk_size", probe)
        assert parallel_map(
            _square, list(range(8)), workers=100, supervise=False
        ) == [i * i for i in range(8)]
        assert seen == [(8, 8)]


# ---------------------------------------------------------------------------
# program-slice determinism (what makes sharding bit-identical)
# ---------------------------------------------------------------------------


def test_shape_memos_ignore_max_programs():
    """Bounds differing only in ``max_programs`` share one memo entry.

    The shape and sized-combo tables are functions of the shape-relevant
    fields alone; keying them on the full ``SearchBounds`` used to
    duplicate identical tables per ``max_programs`` value.
    """
    from dataclasses import replace

    from repro.search import shapes

    base = replace(TINY_BOUNDS, max_programs=None)
    limited = replace(base, max_programs=3)
    assert shapes._thread_shapes(base) is shapes._thread_shapes(limited)
    assert shapes._sized_combos(base) is shapes._sized_combos(limited)
    # The truncation still applies to the enumeration itself.
    assert program_count(limited) == 3
    assert [p.name for p in generate_programs(limited)] == [
        p.name for p in generate_programs(base)
    ][:3]


def test_generate_programs_slices_concatenate():
    full = [(p.name, p.threads) for p in generate_programs(TINY_BOUNDS)]
    total = program_count(TINY_BOUNDS)
    assert len(full) == total
    sliced = []
    for start in range(0, total, 3):
        sliced.extend(
            (p.name, p.threads)
            for p in generate_programs(TINY_BOUNDS, start, start + 3)
        )
    assert sliced == full


# ---------------------------------------------------------------------------
# catalogue: parallel and cached sweeps are bit-identical to the golden file
# ---------------------------------------------------------------------------


class TestCatalogueSweeps:
    def _assert_matches_golden(self, report):
        golden = _golden()
        for result in report.results:
            for er in result.results:
                key = _golden_key(result.test.name, er.expectation)
                assert er.observed_allowed == golden[key], key

    def test_parallel_matches_serial_and_golden(self):
        serial = run_catalogue(FAST_TESTS, workers=1, cache=False)
        sharded = run_catalogue(FAST_TESTS, workers=2, cache=False)
        assert serial.verdicts() == sharded.verdicts()
        self._assert_matches_golden(serial)
        self._assert_matches_golden(sharded)

    def test_cached_matches_golden_cold_and_warm(self, tmp_path):
        cold_cache = VerdictCache(tmp_path)
        cold = run_catalogue(FAST_TESTS, cache=cold_cache)
        assert cold_cache.writes > 0
        warm_cache = VerdictCache(tmp_path)
        warm = run_catalogue(FAST_TESTS, cache=warm_cache)
        assert warm_cache.hits == sum(
            len(by_name(name).expectations) for name in FAST_TESTS
        )
        assert warm_cache.writes == 0
        assert cold.verdicts() == warm.verdicts()
        self._assert_matches_golden(warm)

    def test_spec_allowed_ignores_cached_entry_of_other_model(self, tmp_path):
        # sb-sc: forbidden under every JS model, allowed... same spec under
        # different models must occupy different cache slots.
        cache = VerdictCache(tmp_path)
        test = by_name("sb-sc")
        spec = test.expectations[0].spec_dict
        models = {e.model for e in test.expectations}
        observed = {
            model: spec_allowed(test, spec, model, cache=cache) for model in models
        }
        uncached = {
            model: spec_allowed(test, spec, model, cache=False) for model in models
        }
        assert observed == uncached

    def test_run_tests_accepts_non_catalogue_tests_in_parallel(self):
        tests = [by_name(name) for name in FAST_TESTS[:2]]
        serial = run_tests(tests, workers=1, cache=False)
        sharded = run_tests(tests, workers=2, cache=False)
        assert [
            tuple(r.observed_allowed for r in result.results) for result in serial
        ] == [
            tuple(r.observed_allowed for r in result.results) for result in sharded
        ]


# ---------------------------------------------------------------------------
# sweeps: sharded + cached searches reproduce the serial reports
# ---------------------------------------------------------------------------


class TestShardedSearches:
    def test_sc_drf_sharded_matches_serial(self):
        serial = search_sc_drf_violation(SC_DRF_BOUNDS, ORIGINAL_MODEL)
        sharded = search_sc_drf_violation(SC_DRF_BOUNDS, ORIGINAL_MODEL, workers=2)
        assert serial.found and sharded.found
        assert serial.programs_examined == sharded.programs_examined
        assert (
            serial.counterexample.program.name
            == sharded.counterexample.program.name
        )
        assert serial.counterexample.outcome == sharded.counterexample.outcome

    def test_sc_drf_cached_warm_run_is_identical(self, tmp_path):
        cache_dir = tmp_path / "verdicts"
        cold = search_sc_drf_violation(
            SC_DRF_BOUNDS, ORIGINAL_MODEL, cache=VerdictCache(cache_dir)
        )
        warm_cache = VerdictCache(cache_dir)
        warm = search_sc_drf_violation(
            SC_DRF_BOUNDS, ORIGINAL_MODEL, cache=warm_cache
        )
        assert warm_cache.hits > 0
        assert (cold.found, cold.programs_examined) == (
            warm.found,
            warm.programs_examined,
        )
        assert (
            cold.counterexample.program.name == warm.counterexample.program.name
        )
        assert cold.counterexample.outcome == warm.counterexample.outcome

    def test_compilation_sweep_sharded_and_cached(self, tmp_path):
        serial = search_compilation_violation(TINY_BOUNDS, FINAL_MODEL)
        sharded = search_compilation_violation(TINY_BOUNDS, FINAL_MODEL, workers=2)
        cached_dir = tmp_path / "verdicts"
        cold = search_compilation_violation(
            TINY_BOUNDS, FINAL_MODEL, cache=VerdictCache(cached_dir)
        )
        warm = search_compilation_violation(
            TINY_BOUNDS, FINAL_MODEL, cache=VerdictCache(cached_dir)
        )
        reports = [serial, sharded, cold, warm]
        assert [r.found for r in reports] == [False] * 4
        assert len({r.programs_examined for r in reports}) == 1

    def test_stale_cache_hit_rescans_rest_of_chunk(self, tmp_path):
        """A disowned (stale) cached hit must not skip the chunk's tail.

        Seed a bogus ``True`` verdict early in the enumeration: the sweep
        must disown it, repair the entry, and still examine every program —
        including finding a genuine counter-example later on.
        """
        from repro.dispatch import program_fingerprint

        cache = VerdictCache(tmp_path)
        poisoned = next(generate_programs(SC_DRF_BOUNDS, 2, 3))
        key = cache.key("sc-drf", program_fingerprint(poisoned), ORIGINAL_MODEL, False)
        cache.put(key, True)

        serial = search_sc_drf_violation(SC_DRF_BOUNDS, ORIGINAL_MODEL)
        repaired = search_sc_drf_violation(
            SC_DRF_BOUNDS, ORIGINAL_MODEL, cache=VerdictCache(tmp_path)
        )
        assert repaired.found == serial.found
        assert repaired.programs_examined == serial.programs_examined
        assert (
            repaired.counterexample.program.name
            == serial.counterexample.program.name
        )
        # The poisoned entry was repaired on disk.
        assert VerdictCache(tmp_path).get(key) is False

    def test_corpus_compilation_parallel_matches_serial(self, tmp_path):
        programs = list(generate_programs(TINY_BOUNDS, 0, 6))
        serial = check_corpus_compilation(programs, FINAL_MODEL)
        sharded = check_corpus_compilation(programs, FINAL_MODEL, workers=2)
        cache_dir = tmp_path / "verdicts"
        cold = check_corpus_compilation(
            programs, FINAL_MODEL, cache=VerdictCache(cache_dir)
        )
        warm_cache = VerdictCache(cache_dir)
        warm = check_corpus_compilation(programs, FINAL_MODEL, cache=warm_cache)
        assert warm_cache.hits > 0

        def summary(results):
            return [
                (
                    r.program,
                    r.correct,
                    r.arm_executions,
                    r.valid_with_construction,
                    r.valid_with_search,
                    r.construction_failures,
                )
                for r in results
            ]

        assert summary(serial) == summary(sharded) == summary(cold) == summary(warm)
