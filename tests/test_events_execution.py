"""Tests for JavaScript events, candidate executions and derived relations."""

import pytest

from repro.core.events import (
    Event,
    EventSet,
    INIT,
    SEQCST,
    UNORDERED,
    make_init_event,
    overlap,
    ranges_equal,
    ranges_intersect,
)
from repro.core.execution import CandidateExecution, MalformedExecutionError
from repro.core.relations import Relation


def w(eid, tid, index, value, width=4, mode=SEQCST, block="b", tearfree=True):
    data = tuple((value & ((1 << (8 * width)) - 1)).to_bytes(width, "little"))
    return Event(eid=eid, tid=tid, ord=mode, block=block, index=index, writes=data, tearfree=tearfree)


def r(eid, tid, index, value, width=4, mode=SEQCST, block="b", tearfree=True):
    data = tuple((value & ((1 << (8 * width)) - 1)).to_bytes(width, "little"))
    return Event(eid=eid, tid=tid, ord=mode, block=block, index=index, reads=data, tearfree=tearfree)


class TestEvent:
    def test_ranges(self):
        event = w(1, 0, 4, 5)
        assert list(event.range_w) == [4, 5, 6, 7]
        assert list(event.range_r) == []
        assert list(event.footprint) == [4, 5, 6, 7]

    def test_classification(self):
        write = w(1, 0, 0, 1)
        read = r(2, 0, 0, 1)
        assert write.is_write and not write.is_read and not write.is_rmw
        assert read.is_read and not read.is_write
        rmw = Event(eid=3, tid=0, ord=SEQCST, block="b", index=0, reads=(0,), writes=(1,))
        assert rmw.is_rmw

    def test_byte_accessors(self):
        event = w(1, 0, 4, 0x0201, width=2)
        assert event.written_byte(4) == 1
        assert event.written_byte(5) == 2
        with pytest.raises(KeyError):
            event.written_byte(6)

    def test_overlap_requires_same_block(self):
        a = w(1, 0, 0, 1, block="x")
        b = w(2, 1, 0, 1, block="y")
        assert not overlap(a, b)
        c = w(3, 1, 2, 1, block="x")
        assert overlap(a, c)
        d = w(4, 1, 4, 1, block="x")
        assert not overlap(a, d)

    def test_mixed_size_partial_overlap(self):
        wide = w(1, 0, 0, 1, width=4)
        narrow = r(2, 1, 2, 0, width=2)
        assert wide.overlaps(narrow)
        assert not wide.same_footprint(narrow)

    def test_invalid_events_rejected(self):
        with pytest.raises(ValueError):
            Event(eid=1, tid=0, ord=SEQCST, block="b", index=0)
        with pytest.raises(ValueError):
            Event(eid=1, tid=0, ord=SEQCST, block="b", index=0, writes=(300,))
        with pytest.raises(ValueError):
            Event(eid=1, tid=-1, ord=INIT, block="b", index=0, reads=(0,), writes=(0,))

    def test_init_event_covers_buffer(self):
        init = make_init_event("b", 16)
        assert init.is_init
        assert len(init.writes) == 16
        assert list(init.range_w) == list(range(16))

    def test_describe_mentions_mode_and_value(self):
        event = w(1, 0, 0, 7, mode=UNORDERED)
        assert "WUn" in event.describe()
        assert "=7" in event.describe()


class TestEventSet:
    def test_lookup_and_selectors(self):
        init = make_init_event("b", 8)
        events = EventSet((init, w(1, 0, 0, 1), r(2, 1, 0, 1)))
        assert events.by_eid(1).is_write
        assert len(events.reads()) == 1
        assert len(events.writes()) == 2  # init + the store
        assert events.inits() == (init,)
        assert events.on_thread(1)[0].eid == 2
        assert {e.eid for e in events.writers_of_byte("b", 0)} == {0, 1}

    def test_duplicate_eids_rejected(self):
        with pytest.raises(ValueError):
            EventSet((w(1, 0, 0, 1), r(1, 1, 0, 1)))


def message_passing_execution(tot=None):
    """The Fig. 2 candidate execution (message passing, both outcomes observed)."""
    init = make_init_event("b", 8)
    a = w(1, 0, 0, 3, mode=UNORDERED)
    b = w(2, 0, 4, 5, mode=SEQCST)
    c = r(3, 1, 4, 5, mode=SEQCST)
    d = r(4, 1, 0, 3, mode=UNORDERED)
    rbf = {(k, 1, 4) for k in range(0, 4)} | {(k, 2, 3) for k in range(4, 8)}
    return CandidateExecution.build(
        events=[init, a, b, c, d],
        sb=[(1, 2), (3, 4)],
        rbf=rbf,
        tot=tot,
    )


class TestCandidateExecution:
    def test_well_formedness(self):
        execution = message_passing_execution(tot=[0, 1, 2, 3, 4])
        execution.check_well_formed()

    def test_missing_tot_detected(self):
        execution = message_passing_execution()
        assert execution.is_well_formed(require_tot=False)
        assert not execution.is_well_formed(require_tot=True)

    def test_value_mismatch_rejected(self):
        init = make_init_event("b", 4)
        bad = CandidateExecution.build(
            events=[init, w(1, 0, 0, 1), r(2, 1, 0, 2)],
            rbf={(k, 1, 2) for k in range(4)},
            tot=[0, 1, 2],
        )
        with pytest.raises(MalformedExecutionError):
            bad.check_well_formed()

    def test_self_read_rejected(self):
        init = make_init_event("b", 4)
        rmw = Event(eid=1, tid=0, ord=SEQCST, block="b", index=0, reads=(1, 0, 0, 0), writes=(1, 0, 0, 0))
        bad = CandidateExecution.build(
            events=[init, rmw], rbf={(k, 1, 1) for k in range(4)}, tot=[0, 1]
        )
        with pytest.raises(MalformedExecutionError):
            bad.check_well_formed()

    def test_unjustified_read_byte_rejected(self):
        init = make_init_event("b", 4)
        bad = CandidateExecution.build(
            events=[init, r(1, 0, 0, 0)], rbf={(0, 0, 1)}, tot=[0, 1]
        )
        with pytest.raises(MalformedExecutionError):
            bad.check_well_formed()

    def test_reads_from_projection(self):
        execution = message_passing_execution(tot=[0, 1, 2, 3, 4])
        assert execution.reads_from().pairs == {(1, 4), (2, 3)}

    def test_synchronizes_with_requires_equal_ranges_and_seqcst(self):
        execution = message_passing_execution(tot=[0, 1, 2, 3, 4])
        sw = execution.synchronizes_with(simplified=True)
        assert (2, 3) in sw          # SC write/read pair on the flag
        assert (1, 4) not in sw      # unordered data accesses do not synchronise

    def test_original_sw_has_init_special_case(self):
        init = make_init_event("b", 4)
        read = r(1, 0, 0, 0, mode=SEQCST)
        execution = CandidateExecution.build(
            events=[init, read], rbf={(k, 0, 1) for k in range(4)}, tot=[0, 1]
        )
        assert (0, 1) in execution.synchronizes_with(simplified=False)
        assert (0, 1) not in execution.synchronizes_with(simplified=True)

    def test_happens_before_contains_sb_sw_and_init_edges(self):
        execution = message_passing_execution(tot=[0, 1, 2, 3, 4])
        hb = execution.happens_before(simplified_sw=True)
        assert (1, 2) in hb  # sb
        assert (2, 3) in hb  # sw
        assert (1, 4) in hb  # transitively through the flag
        assert (0, 4) in hb  # init before everything overlapping

    def test_partial_overlap_and_tearing_detection(self):
        execution = message_passing_execution(tot=[0, 1, 2, 3, 4])
        assert not execution.has_partial_overlaps()
        assert execution.rf_inverse_functional()

    def test_describe_contains_events(self):
        text = message_passing_execution(tot=[0, 1, 2, 3, 4]).describe()
        assert "WSC" in text and "rbf" in text
