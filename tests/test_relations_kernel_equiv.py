"""Equivalence of the bitset relation kernel against a reference implementation.

The :class:`~repro.core.relations.Relation` kernel stores adjacency as
dense Python-int bitmasks and runs composition / transitive closure /
acyclicity bit-parallel.  This suite checks, on ~1k seeded random
relations, that every kernel-backed operation agrees with a direct
frozenset-of-pairs reference implementation — the representation the
original code used and the one the class still exposes via ``.pairs``.
"""

import random

import pytest

from repro.core.relations import Relation, acyclic_pairs


# ---------------------------------------------------------------------------
# reference (frozenset-of-pairs) implementations
# ---------------------------------------------------------------------------


def ref_compose(a, b):
    by_source = {}
    for (x, y) in b:
        by_source.setdefault(x, []).append(y)
    return frozenset(
        (x, z) for (x, y) in a for z in by_source.get(y, ())
    )


def ref_transitive_closure(pairs):
    succ = {}
    for (a, b) in pairs:
        succ.setdefault(a, set()).add(b)
    closure = set()
    for start in succ:
        seen = set()
        stack = list(succ.get(start, ()))
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(succ.get(node, ()))
        closure.update((start, node) for node in seen)
    return frozenset(closure)


def ref_is_acyclic(pairs):
    closure = ref_transitive_closure(pairs)
    return all(a != b for (a, b) in closure)


def ref_is_transitive(pairs):
    return ref_transitive_closure(pairs) <= frozenset(pairs)


def ref_successors(pairs, element):
    return frozenset(b for (a, b) in pairs if a == element)


def ref_predecessors(pairs, element):
    return frozenset(a for (a, b) in pairs if b == element)


def ref_domain(pairs):
    return frozenset(a for (a, _b) in pairs)


def ref_codomain(pairs):
    return frozenset(b for (_a, b) in pairs)


def ref_is_functional(pairs):
    seen = {}
    for (a, b) in pairs:
        if a in seen and seen[a] != b:
            return False
        seen[a] = b
    return True


# ---------------------------------------------------------------------------
# seeded random case generation
# ---------------------------------------------------------------------------


def random_pairs(rng, universe_size, density):
    universe = range(universe_size)
    pairs = set()
    for a in universe:
        for b in universe:
            if rng.random() < density:
                pairs.add((a, b))
    return frozenset(pairs)


CASES = []
_rng = random.Random(0x5EED)
for _ in range(1000):
    size = _rng.randint(0, 8)
    density = _rng.choice([0.05, 0.15, 0.3, 0.6])
    CASES.append(random_pairs(_rng, size, density))


@pytest.mark.parametrize("chunk", range(10))
def test_kernel_matches_reference(chunk):
    cases = CASES[chunk * 100:(chunk + 1) * 100]
    rng = random.Random(chunk)
    for pairs in cases:
        rel = Relation(pairs)

        # -- queries -----------------------------------------------------
        assert rel.domain() == ref_domain(pairs)
        assert rel.codomain() == ref_codomain(pairs)
        assert rel.elements() == ref_domain(pairs) | ref_codomain(pairs)
        assert rel.is_acyclic() == ref_is_acyclic(pairs)
        assert rel.is_transitive() == ref_is_transitive(pairs)
        assert rel.is_functional() == ref_is_functional(pairs)
        assert rel.is_irreflexive() == all(a != b for (a, b) in pairs)
        for element in range(-1, 9):
            assert rel.successors(element) == ref_successors(pairs, element)
            assert rel.predecessors(element) == ref_predecessors(pairs, element)

        # -- closure and inverse (kernel-backed, lazily materialised) ----
        closure = rel.transitive_closure()
        assert closure.pairs == ref_transitive_closure(pairs)
        assert closure.is_transitive()
        assert rel.inverse().pairs == frozenset((b, a) for (a, b) in pairs)
        assert rel.inverse().inverse() == rel

        # -- acyclic_pairs helper agrees with the relation-level check ---
        assert acyclic_pairs(pairs) == rel.is_acyclic()

        # -- membership / size on lazy relations -------------------------
        assert len(closure) == len(closure.pairs)
        some = sorted(pairs)[:3]
        for pair in some:
            assert pair in rel

        # -- binary operations against a second random relation ---------
        other_pairs = random_pairs(rng, 8, 0.2)
        other = Relation(other_pairs)
        assert rel.compose(other).pairs == ref_compose(pairs, other_pairs)
        assert (rel | other).pairs == pairs | other_pairs
        assert (rel & other).pairs == pairs & other_pairs
        assert (rel - other).pairs == pairs - other_pairs
        assert rel.contains_relation(other) == (other_pairs <= pairs)
        # Compose two kernel-lazy relations (different universes).
        assert rel.transitive_closure().compose(
            other.transitive_closure()
        ).pairs == ref_compose(
            ref_transitive_closure(pairs), ref_transitive_closure(other_pairs)
        )


def test_from_total_order_lazy_kernel():
    rng = random.Random(42)
    for _ in range(100):
        n = rng.randint(0, 8)
        ordering = list(range(n))
        rng.shuffle(ordering)
        rel = Relation.from_total_order(ordering)
        expected = frozenset(
            (ordering[i], ordering[j])
            for i in range(n)
            for j in range(i + 1, n)
        )
        assert rel.pairs == expected
        assert rel.is_acyclic()
        if n:
            assert rel.is_strict_total_order_over(ordering)
