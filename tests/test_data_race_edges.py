"""Edge cases of the Fig. 7 race predicate (``core/data_race.py``).

Companion to the theorem-level suite: mixed-size *partial* overlaps,
same-range SeqCst pairs in every mode combination, Init-event non-races,
and wait/notify (``asw``) synchronisation edges entering ``hb``.
"""

from repro.core.data_race import data_races, is_data_race, is_race_free_execution
from repro.core.events import Event, SEQCST, UNORDERED, make_init_event
from repro.core.execution import CandidateExecution
from repro.core.js_model import FINAL_MODEL, ORIGINAL_MODEL


def _bytes(value, width):
    return tuple((value & ((1 << (8 * width)) - 1)).to_bytes(width, "little"))


def write(eid, tid, index, value, width=4, mode=SEQCST):
    return Event(eid=eid, tid=tid, ord=mode, block="b", index=index, writes=_bytes(value, width))


def read(eid, tid, index, value, width=4, mode=SEQCST):
    return Event(eid=eid, tid=tid, ord=mode, block="b", index=index, reads=_bytes(value, width))


def hb_of(execution, model=FINAL_MODEL):
    return model.happens_before(execution)


class TestMixedSizePartialOverlaps:
    def test_partially_overlapping_tail_races(self):
        # 4-byte write at [0:4) vs 2-byte read at [2:4): two shared bytes.
        init = make_init_event("b", 8)
        wide = write(1, 0, 0, 1, width=4, mode=UNORDERED)
        narrow = read(2, 1, 2, 0, width=2, mode=UNORDERED)
        execution = CandidateExecution.build(
            events=[init, wide, narrow],
            rbf={(2, 1, 2), (3, 1, 2)},
            tot=[0, 1, 2],
        )
        assert (1, 2) in data_races(execution, FINAL_MODEL)

    def test_disjoint_footprints_never_race(self):
        # Same block, adjacent but non-overlapping ranges.
        init = make_init_event("b", 8)
        low = write(1, 0, 0, 1, width=4, mode=UNORDERED)
        high = read(2, 1, 4, 0, width=2, mode=UNORDERED)
        execution = CandidateExecution.build(
            events=[init, low, high],
            rbf={(4, 0, 2), (5, 0, 2)},
            tot=[0, 1, 2],
        )
        assert is_race_free_execution(execution, FINAL_MODEL)

    def test_partial_overlap_races_even_when_both_seqcst(self):
        # The SeqCst exemption needs *equal* ranges; a partial overlap of
        # two SeqCst accesses is still a race (Fig. 7's range clause).
        init = make_init_event("b", 8)
        wide = write(1, 0, 0, 1, width=4, mode=SEQCST)
        narrow = write(2, 1, 2, 1, width=2, mode=SEQCST)
        execution = CandidateExecution.build(
            events=[init, wide, narrow], tot=[0, 1, 2]
        )
        hb = hb_of(execution)
        assert is_data_race(wide, narrow, hb)


class TestSameRangeSeqCstPairs:
    def test_seqcst_write_write_same_range_is_exempt(self):
        init = make_init_event("b", 4)
        w0 = write(1, 0, 0, 1, mode=SEQCST)
        w1 = write(2, 1, 0, 2, mode=SEQCST)
        execution = CandidateExecution.build(events=[init, w0, w1], tot=[0, 1, 2])
        assert is_race_free_execution(execution, FINAL_MODEL)

    def test_seqcst_vs_unordered_same_range_races(self):
        init = make_init_event("b", 4)
        w0 = write(1, 0, 0, 1, mode=SEQCST)
        r0 = read(2, 1, 0, 0, mode=UNORDERED)
        execution = CandidateExecution.build(
            events=[init, w0, r0], rbf={(k, 0, 2) for k in range(4)}, tot=[0, 1, 2]
        )
        assert (1, 2) in data_races(execution, FINAL_MODEL)

    def test_seqcst_reads_without_write_never_race(self):
        init = make_init_event("b", 4)
        r0 = read(1, 0, 0, 0, mode=UNORDERED)
        r1 = read(2, 1, 0, 0, mode=UNORDERED)
        execution = CandidateExecution.build(
            events=[init, r0, r1],
            rbf={(k, 0, 1) for k in range(4)} | {(k, 0, 2) for k in range(4)},
            tot=[0, 1, 2],
        )
        assert is_race_free_execution(execution, FINAL_MODEL)


class TestInitEvents:
    def test_init_never_races_with_overlapping_write(self):
        # Init precedes everything it overlaps (init-overlap ⊆ hb), so even
        # an unordered conflicting write does not race with it.
        init = make_init_event("b", 4)
        w0 = write(1, 0, 0, 1, mode=UNORDERED)
        execution = CandidateExecution.build(events=[init, w0], tot=[0, 1])
        hb = hb_of(execution)
        assert not is_data_race(init, w0, hb)
        assert data_races(execution, FINAL_MODEL) == []

    def test_init_exemption_holds_under_original_model(self):
        init = make_init_event("b", 4)
        w0 = write(1, 0, 0, 1, mode=UNORDERED)
        r0 = read(2, 1, 0, 0, mode=UNORDERED)
        execution = CandidateExecution.build(
            events=[init, w0, r0], rbf={(k, 0, 2) for k in range(4)}, tot=[0, 1, 2]
        )
        races = data_races(execution, ORIGINAL_MODEL)
        assert (0, 1) not in races and (0, 2) not in races
        assert (1, 2) in races  # the non-init pair still races


class TestWaitNotifySyncEdges:
    def test_asw_edge_orders_the_racing_pair(self):
        # The wait/notify pattern: an agent's write is released to the
        # waiter through an additional-synchronizes-with edge, which enters
        # sw and therefore hb — the conflicting pair stops racing.
        init = make_init_event("b", 4)
        w0 = write(1, 0, 0, 1, mode=UNORDERED)
        r0 = read(2, 1, 0, 1, mode=UNORDERED)
        rbf = {(k, 1, 2) for k in range(4)}
        racy = CandidateExecution.build(
            events=[init, w0, r0], rbf=rbf, tot=[0, 1, 2]
        )
        assert (1, 2) in data_races(racy, FINAL_MODEL)
        synced = CandidateExecution.build(
            events=[init, w0, r0], asw=[(1, 2)], rbf=rbf, tot=[0, 1, 2]
        )
        assert is_race_free_execution(synced, FINAL_MODEL)

    def test_asw_edge_orders_transitively_through_sb(self):
        # t0: write data, then the "notify" point; t1: the "wait" point,
        # then read data.  asw connects notify to wait; sb closes the rest.
        init = make_init_event("b", 8)
        data_w = write(1, 0, 0, 7, mode=UNORDERED)
        notify_w = write(2, 0, 4, 1, mode=SEQCST)
        wait_r = read(3, 1, 4, 1, mode=SEQCST)
        data_r = read(4, 1, 0, 7, mode=UNORDERED)
        execution = CandidateExecution.build(
            events=[init, data_w, notify_w, wait_r, data_r],
            sb=[(1, 2), (3, 4)],
            asw=[(2, 3)],
            rbf={(k, 2, 3) for k in range(4, 8)} | {(k, 1, 4) for k in range(4)},
            tot=[0, 1, 2, 3, 4],
        )
        assert is_race_free_execution(execution, FINAL_MODEL)
        hb = hb_of(execution)
        assert (1, 4) in hb  # data write hb data read, through asw
