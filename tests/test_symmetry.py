"""The symmetry engine: canonical forms, quotients, cache tier, independence.

The engine's one contract mirrors the analyzer's: with ``REPRO_SYMMETRY``
on or off, every verdict-producing API returns exactly the same answers —
symmetry may only change how many programs are actually *evaluated*.
These tests enforce that contract (catalogue-wide renaming parity, a
thousand generated programs, quotiented sweeps bit-identical to unquotiented
ones, budget exceptions preserved), then pin down the mechanisms: the
canonical-form pass and its relabelings, the orbit quotient, the canonical
cache-key tier with its read-back parity check, and the static independence
decomposition.
"""

import contextlib
import dataclasses
import itertools
import json
import os

import pytest

from repro.analyze import cli as analyze_cli
from repro.analyze import symmetry as sym
from repro.analyze.symmetry import STATS, analyze_symmetry
from repro.core.js_model import ARMV8_FIX_MODEL, FINAL_MODEL, ORIGINAL_MODEL
from repro.dispatch.cache import VerdictCache, get_or_compute_aliased
from repro.lang.ast import Load, Program, Register, Store, Thread, TypedAccess
from repro.lang.enumeration import (
    EnumerationBudgetExceeded,
    allowed_outcomes,
    outcome_allowed,
    program_is_data_race_free,
)
from repro.lang.memory import INT32, new_shared_array_buffer, new_typed_array
from repro.litmus.catalogue import FINAL, LitmusTest, all_tests, by_name
from repro.litmus.generator import orbit_quotient
from repro.litmus.runner import _spec_allowed_uncached, run_catalogue, spec_allowed
from repro.search import SearchBounds, search_sc_drf_violation
from repro.search.counterexamples import search_compilation_violation
from repro.search.shapes import generate_programs


@contextlib.contextmanager
def symmetry(value):
    """Run a block with ``REPRO_SYMMETRY`` set to ``value``."""
    previous = os.environ.get(sym.SYMMETRY_ENV)
    os.environ[sym.SYMMETRY_ENV] = value
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(sym.SYMMETRY_ENV, None)
        else:
            os.environ[sym.SYMMETRY_ENV] = previous


def message_passing_pair():
    """Two isomorphic message-passing programs: threads swapped, registers renamed."""
    sab_a = new_shared_array_buffer("x", 8)
    view_a = new_typed_array("x", sab_a, INT32)
    data_a, flag_a = TypedAccess(view_a, 0), TypedAccess(view_a, 1)
    original = Program(
        name="mp-original",
        buffers=(sab_a,),
        threads=(
            Thread((Store(data_a, 1, atomic=True), Store(flag_a, 1, atomic=True))),
            Thread(
                (
                    Load(Register("rf"), flag_a, atomic=True),
                    Load(Register("rd"), data_a, atomic=True),
                )
            ),
        ),
    )
    sab_b = new_shared_array_buffer("y", 8)
    view_b = new_typed_array("y", sab_b, INT32)
    data_b, flag_b = TypedAccess(view_b, 0), TypedAccess(view_b, 1)
    swapped = Program(
        name="mp-swapped",
        buffers=(sab_b,),
        threads=(
            Thread(
                (
                    Load(Register("a"), flag_b, atomic=True),
                    Load(Register("b"), data_b, atomic=True),
                )
            ),
            Thread((Store(data_b, 1, atomic=True), Store(flag_b, 1, atomic=True))),
        ),
    )
    return original, swapped


def three_component_program():
    """t0/t1 race on word 0, t2 alone touches word 1 — two independent components.

    The t0/t1 pair is deliberately non-atomic (racy), so the PR 9 SC fast
    path declines the whole program and the independence decomposition is
    what actually answers the boolean queries.
    """
    sab = new_shared_array_buffer("b", 8)
    view = new_typed_array("b", sab, INT32)
    shared, lone = TypedAccess(view, 0), TypedAccess(view, 1)
    return Program(
        name="probe-independent",
        buffers=(sab,),
        threads=(
            Thread((Store(shared, 1, atomic=False),)),
            Thread((Load(Register("r0"), shared, atomic=False),)),
            Thread(
                (Store(lone, 2, atomic=True), Load(Register("r0"), lone, atomic=True))
            ),
        ),
    )


GENERATED_BOUNDS = SearchBounds(
    threads=2,
    max_accesses_per_thread=2,
    max_total_accesses=4,
    locations=2,
    values=(1, 2),
    allow_unordered=True,
    guarded_observer=True,
)


class TestCanonicalForm:
    def test_catalogue_relabelings_are_sound(self):
        for test in all_tests():
            analysis = analyze_symmetry(test.program)
            assert analysis.relabeling.parity_ok(), test.name
            assert 1 <= analysis.orbit_size <= analysis.group_size, test.name

    def test_canonical_form_is_idempotent(self):
        for test in all_tests():
            analysis = analyze_symmetry(test.program)
            again = analyze_symmetry(analysis.canonical_program)
            assert again.canonical_key == analysis.canonical_key, test.name
            assert again.relabeling.is_identity, test.name
            assert (
                again.canonical_fingerprint == analysis.canonical_fingerprint
            ), test.name

    def test_isomorphic_programs_share_a_fingerprint(self):
        original, swapped = message_passing_pair()
        a, b = analyze_symmetry(original), analyze_symmetry(swapped)
        assert a.canonical_fingerprint == b.canonical_fingerprint
        assert a.canonical_key == b.canonical_key
        assert a.orbit_size == b.orbit_size
        # At least one of the pair had to move to reach the shared form.
        assert not (a.relabeling.is_identity and b.relabeling.is_identity)

    def test_value_renaming_is_not_in_the_group(self):
        # Stored values pass through byte encode/decode, so a program that
        # differs only in a stored value must keep its own canonical form.
        original, _ = message_passing_pair()
        sab = new_shared_array_buffer("x", 8)
        view = new_typed_array("x", sab, INT32)
        data, flag = TypedAccess(view, 0), TypedAccess(view, 1)
        revalued = Program(
            name="mp-revalued",
            buffers=(sab,),
            threads=(
                Thread((Store(data, 2, atomic=True), Store(flag, 1, atomic=True))),
                Thread(
                    (
                        Load(Register("rf"), flag, atomic=True),
                        Load(Register("rd"), data, atomic=True),
                    )
                ),
            ),
        )
        assert (
            analyze_symmetry(original).canonical_fingerprint
            != analyze_symmetry(revalued).canonical_fingerprint
        )

    def test_analysis_is_memoized_per_program(self):
        program, _ = message_passing_pair()
        assert analyze_symmetry(program) is analyze_symmetry(program)
        assert program.__dict__["_symmetry_memo"] is analyze_symmetry(program)

    def test_outcome_round_trips_through_the_relabeling(self):
        for test in all_tests():
            relabeling = analyze_symmetry(test.program).relabeling
            for expectation in test.expectations:
                spec = expectation.spec_dict
                mapped = relabeling.map_outcome(spec)
                assert mapped is not None, test.name
                assert relabeling.unmap_outcome(mapped) == spec, test.name

    def test_unmappable_outcome_returns_none(self):
        relabeling = analyze_symmetry(by_name("sb-sc").program).relabeling
        assert relabeling.map_outcome({"not-a-key": 1}) is None
        assert relabeling.map_outcome({"9:r0": 1}) is None
        assert relabeling.map_outcome({"0:no_such_register": 1}) is None

    def test_group_cap_degrades_gracefully(self):
        # Seven used indices on one renameable buffer: 7! candidate index
        # renamings blow the cap, the pass falls back to the identity
        # renaming and still produces a sound relabeling.
        sab = new_shared_array_buffer("b", 28)
        view = new_typed_array("b", sab, INT32)
        program = Program(
            name="probe-capped",
            buffers=(sab,),
            threads=(
                Thread(
                    tuple(
                        Load(Register(f"r{i}"), TypedAccess(view, i), atomic=True)
                        for i in range(7)
                    )
                ),
            ),
        )
        before = STATS.group_capped
        analysis = analyze_symmetry(program)
        assert analysis.capped
        assert STATS.group_capped == before + 1
        assert analysis.relabeling.parity_ok()

    def test_describe_mentions_the_partition(self):
        text = analyze_symmetry(three_component_program()).describe()
        assert "canonical fingerprint" in text
        assert "independence partition" in text

    def test_enabled_flag_follows_environment(self):
        with symmetry("off"):
            assert not sym.symmetry_enabled()
            assert sym.sweep_canonical(by_name("sb-sc").program) is None
        with symmetry("1"):
            assert sym.symmetry_enabled()
            assert sym.sweep_canonical(by_name("sb-sc").program) is not None


class TestRenamingParity:
    def test_catalogue_verdicts_survive_relabeling(self):
        # The property the canonical cache tier rests on: every catalogue
        # expectation, evaluated on the canonical program under the mapped
        # spec, returns the original verdict.
        for test in all_tests():
            analysis = analyze_symmetry(test.program)
            canonical_test = dataclasses.replace(
                test, program=analysis.canonical_program
            )
            for expectation in test.expectations:
                spec = expectation.spec_dict
                mapped = analysis.relabeling.map_outcome(spec)
                assert mapped is not None, test.name
                assert _spec_allowed_uncached(
                    canonical_test, mapped, expectation.model
                ) == _spec_allowed_uncached(test, spec, expectation.model), (
                    test.name,
                    expectation.model,
                    spec,
                )

    @pytest.mark.parametrize(
        "model,count",
        [(FINAL_MODEL, 1000), (ORIGINAL_MODEL, 300)],
        ids=["final", "original"],
    )
    def test_generated_program_parity(self, model, count):
        for program in itertools.islice(generate_programs(GENERATED_BOUNDS), count):
            analysis = analyze_symmetry(program)
            relabeling = analysis.relabeling
            canonical = analysis.canonical_program
            assert program_is_data_race_free(
                program, model=model
            ) == program_is_data_race_free(canonical, model=model)
            original_outcomes = allowed_outcomes(program, model=model)
            canonical_outcomes = {
                tuple(sorted(o.items()))
                for o in allowed_outcomes(canonical, model=model)
            }
            mapped_outcomes = set()
            for outcome in original_outcomes:
                mapped = relabeling.map_outcome(outcome)
                assert mapped is not None, program.name
                mapped_outcomes.add(tuple(sorted(mapped.items())))
            assert mapped_outcomes == canonical_outcomes, program.name


class TestQuotientedSweeps:
    def test_sc_drf_hunt_bit_identical(self):
        # The §5.4 sweep over the two-location bound, quotiented vs not:
        # verdict, examined count and the counterexample itself (reported
        # in the original labeling) must match bit for bit.
        with symmetry("off"):
            off = search_sc_drf_violation(
                GENERATED_BOUNDS, model=ORIGINAL_MODEL, cache=False
            )
        with symmetry("1"):
            on = search_sc_drf_violation(
                GENERATED_BOUNDS, model=ORIGINAL_MODEL, cache=False
            )
        assert on.found == off.found
        assert on.programs_examined == off.programs_examined
        assert on.counterexample.program.name == off.counterexample.program.name
        assert on.counterexample.outcome == off.counterexample.outcome
        # The quotient did real work on the way there.
        assert on.symmetry_stats is not None
        assert on.symmetry_stats["members_skipped"] >= 1
        assert off.symmetry_stats is None

    def test_sc_drf_final_model_exhausts_identically(self):
        bounds = dataclasses.replace(GENERATED_BOUNDS, max_programs=300)
        with symmetry("off"):
            off = search_sc_drf_violation(bounds, model=FINAL_MODEL, cache=False)
        with symmetry("1"):
            on = search_sc_drf_violation(bounds, model=FINAL_MODEL, cache=False)
        assert on.found == off.found == False  # noqa: E712 - the verdict is the point
        assert on.programs_examined == off.programs_examined

    def test_compilation_sweep_bit_identical(self):
        bounds = SearchBounds(max_programs=80)
        with symmetry("off"):
            off = search_compilation_violation(
                bounds, model=ORIGINAL_MODEL, cache=False
            )
        with symmetry("1"):
            on = search_compilation_violation(
                bounds, model=ORIGINAL_MODEL, cache=False
            )
        assert on.found == off.found
        assert on.programs_examined == off.programs_examined

    def test_cached_quotiented_sweep_stays_identical(self, tmp_path):
        bounds = dataclasses.replace(GENERATED_BOUNDS, max_programs=120)
        with symmetry("1"):
            cold = search_sc_drf_violation(
                bounds,
                model=ORIGINAL_MODEL,
                cache=VerdictCache(tmp_path / "cache"),
            )
            warm = search_sc_drf_violation(
                bounds,
                model=ORIGINAL_MODEL,
                cache=VerdictCache(tmp_path / "cache"),
            )
        with symmetry("off"):
            plain = search_sc_drf_violation(bounds, model=ORIGINAL_MODEL, cache=False)
        for report in (cold, warm):
            assert report.found == plain.found
            assert report.programs_examined == plain.programs_examined

    def test_budget_exception_identical(self):
        # The independence decomposition is gated on ``max_assignments is
        # None``: a budgeted enumeration must blow up identically, with the
        # budget charged from the undecomposed assignment space.
        program = by_name("fig14-init-tearing").program
        with symmetry("off"):
            with pytest.raises(EnumerationBudgetExceeded) as off:
                allowed_outcomes(program, model=FINAL_MODEL, max_assignments=1)
        with symmetry("1"):
            with pytest.raises(EnumerationBudgetExceeded) as on:
                allowed_outcomes(program, model=FINAL_MODEL, max_assignments=1)
        assert str(on.value) == str(off.value)

    def test_search_report_describe_carries_symmetry(self):
        with symmetry("1"):
            report = search_sc_drf_violation(
                SearchBounds(max_programs=8), model=ORIGINAL_MODEL, cache=False
            )
        assert "symmetry:" in report.describe()
        with symmetry("off"):
            report = search_sc_drf_violation(
                SearchBounds(max_programs=8), model=ORIGINAL_MODEL, cache=False
            )
        assert "symmetry:" not in report.describe()


class TestOrbitQuotient:
    def test_quotient_partitions_the_corpus(self):
        corpus = list(itertools.islice(generate_programs(GENERATED_BOUNDS), 300))
        with symmetry("1"):
            classes = orbit_quotient(corpus)
        assert sum(cls.multiplicity for cls in classes) == len(corpus)
        assert len(classes) < len(corpus)
        flattened = [program for cls in classes for program in cls.members]
        assert {id(p) for p in flattened} == {id(p) for p in corpus}
        for cls in classes:
            assert cls.representative is cls.members[0]
            fingerprints = {
                analyze_symmetry(member).canonical_fingerprint
                for member in cls.members
            }
            assert len(fingerprints) == 1

    def test_representative_verdict_holds_for_members(self):
        corpus = list(itertools.islice(generate_programs(GENERATED_BOUNDS), 300))
        with symmetry("1"):
            classes = orbit_quotient(corpus)
        checked = 0
        for cls in classes:
            if cls.multiplicity < 2:
                continue
            verdicts = {
                program_is_data_race_free(member, model=FINAL_MODEL)
                for member in cls.members
            }
            assert len(verdicts) == 1, cls.representative.name
            checked += 1
            if checked >= 5:
                break
        assert checked >= 1

    def test_quotient_off_is_the_identity(self):
        corpus = list(itertools.islice(generate_programs(GENERATED_BOUNDS), 40))
        with symmetry("off"):
            classes = orbit_quotient(corpus)
        assert len(classes) == len(corpus)
        assert all(cls.multiplicity == 1 for cls in classes)


class TestCanonicalCacheTier:
    def test_compute_writes_both_keys(self, tmp_path):
        cache = VerdictCache(tmp_path)
        key, alias = cache.key("probe", "primary"), cache.key("probe", "alias")
        assert get_or_compute_aliased(cache, key, alias, lambda: True) is True
        assert cache.get(key) is True
        assert cache.get(alias) is True

    def test_alias_hit_replays_and_fills_primary(self, tmp_path):
        cache = VerdictCache(tmp_path)
        key, alias = cache.key("probe", "primary"), cache.key("probe", "alias")
        cache.put(alias, False)
        hits = []
        verdict = get_or_compute_aliased(
            cache,
            key,
            alias,
            lambda: pytest.fail("alias hit must not recompute"),
            on_alias_hit=lambda: hits.append(1),
        )
        assert verdict is False
        assert hits == [1]
        assert cache.get(key) is False

    def test_lazy_alias_is_never_built_on_a_primary_hit(self, tmp_path):
        cache = VerdictCache(tmp_path)
        key = cache.key("probe", "primary")
        cache.put(key, True)
        verdict = get_or_compute_aliased(
            cache,
            key,
            lambda: pytest.fail("primary hit must not build the alias"),
            lambda: pytest.fail("primary hit must not recompute"),
        )
        assert verdict is True

    def test_lazy_alias_is_used_on_a_primary_miss(self, tmp_path):
        cache = VerdictCache(tmp_path)
        key, alias = cache.key("probe", "primary"), cache.key("probe", "alias")
        cache.put(alias, False)
        hits = []
        verdict = get_or_compute_aliased(
            cache,
            key,
            lambda: (alias, None),
            lambda: pytest.fail("alias hit must not recompute"),
            on_alias_hit=lambda: hits.append(1),
        )
        assert verdict is False
        assert hits == [1]
        assert cache.get(key) is False

    def test_failed_parity_forces_a_recompute(self, tmp_path):
        cache = VerdictCache(tmp_path)
        key, alias = cache.key("probe", "primary"), cache.key("probe", "alias")
        cache.put(alias, True)
        computed = []
        verdict = get_or_compute_aliased(
            cache,
            key,
            alias,
            lambda: computed.append(1) or False,
            parity=lambda _verdict: False,
        )
        assert verdict is False
        assert computed == [1]

    def test_missing_alias_degrades_to_plain_lookup(self, tmp_path):
        cache = VerdictCache(tmp_path)
        key = cache.key("probe", "primary")
        assert get_or_compute_aliased(cache, key, None, lambda: True) is True
        assert cache.get(key) is True

    def test_isomorphic_litmus_tests_share_a_cache_slot(self, tmp_path):
        original, swapped = message_passing_pair()
        test_a = LitmusTest(name="mp-a", program=original, expectations=())
        test_b = LitmusTest(name="mp-b", program=swapped, expectations=())
        cache = VerdictCache(tmp_path)
        with symmetry("1"):
            first = spec_allowed(test_a, {"1:rf": 1, "1:rd": 0}, FINAL, cache=cache)
            before = STATS.canonical_cache_hits
            # The same question about the isomorph: threads swapped,
            # registers renamed.  Never computed — served through the
            # canonical alias.
            second = spec_allowed(test_b, {"0:a": 1, "0:b": 0}, FINAL, cache=cache)
        assert STATS.canonical_cache_hits == before + 1
        assert first == second
        with symmetry("off"):
            assert (
                _spec_allowed_uncached(test_b, {"0:a": 1, "0:b": 0}, FINAL) == second
            )

    def test_alias_parity_guards_the_replay(self):
        analysis = analyze_symmetry(by_name("sb-sc").program)
        check = sym.alias_parity(analysis, {"0:r0": 0})
        assert check(True)
        # A degenerate thread_order makes the lazily-built relabeling
        # fail its bijection check; the replay must be rejected.
        broken = dataclasses.replace(
            analysis, thread_order=(0, 0), register_numberings=({}, {})
        )
        assert broken.relabeling == sym.Relabeling((0, 0), ((), ()))
        failures = STATS.parity_failures
        assert not sym.alias_parity(broken)(True)
        assert STATS.parity_failures == failures + 1


class TestIndependence:
    def test_partition_by_byte_footprint(self):
        assert sym.independence_partition(three_component_program()) == ((0, 1), (2,))
        # Overlapping footprints collapse to one component.
        assert sym.independence_partition(by_name("sb-sc").program) == ((0, 1),)

    def test_applies_gating(self):
        program = three_component_program()
        with symmetry("1"):
            assert sym.independence_applies(program, FINAL_MODEL)
            # ORIGINAL / ARMV8_FIX are the Fig. 8 models: factored-out
            # components would be answered by the SC oracle, which
            # under-approximates them — never decompose.
            assert not sym.independence_applies(program, ORIGINAL_MODEL)
            assert not sym.independence_applies(program, ARMV8_FIX_MODEL)
            assert not sym.independence_applies(
                program, FINAL_MODEL, max_assignments=100
            )
            assert not sym.independence_applies(
                program, FINAL_MODEL, extra_asw=((1, 2),)
            )
            assert not sym.independence_applies(
                by_name("fig13-wait-notify").program, FINAL_MODEL
            )
            assert not sym.independence_applies(by_name("sb-sc").program, FINAL_MODEL)
        with symmetry("off"):
            assert not sym.independence_applies(program, FINAL_MODEL)

    def test_split_remaps_specs_per_component(self):
        program = three_component_program()
        parts = sym.independence_split(program, {"1:r0": 1, "2:r0": 2})
        assert parts is not None
        assert [tids for tids, _sub, _spec in parts] == [(0, 1), (2,)]
        (_, first_sub, first_spec), (_, second_sub, second_spec) = parts
        assert first_sub.thread_count == 2 and first_spec == {"1:r0": 1}
        assert second_sub.thread_count == 1 and second_spec == {"0:r0": 2}
        assert sym.independence_split(program, {"bogus": 1}) is None

    def test_decomposed_verdicts_bit_identical(self):
        program = three_component_program()
        specs = [
            {"1:r0": 1, "2:r0": 2},
            {"1:r0": 0, "2:r0": 2},
            {"1:r0": 1, "2:r0": 0},
            {"2:r0": 2},
            {"1:r0": 77},
        ]
        with symmetry("off"):
            off = [outcome_allowed(program, spec, FINAL_MODEL) for spec in specs]
        with symmetry("1"):
            before = STATS.independent_splits
            on = [outcome_allowed(program, spec, FINAL_MODEL) for spec in specs]
            assert STATS.independent_splits > before
        assert on == off
        # Sanity: the probe exercises both verdicts.
        assert True in off and False in off


class TestStatsSurfacing:
    def test_catalogue_report_carries_symmetry_stats(self, tmp_path):
        with symmetry("1"):
            report = run_catalogue(
                ["sb-sc", "sb-un"], cache=VerdictCache(tmp_path)
            )
        assert report.symmetry_stats is not None
        assert report.symmetry_stats["programs_canonicalized"] >= 1
        assert "symmetry:" in report.describe()

    def test_catalogue_report_without_symmetry(self):
        with symmetry("off"):
            report = run_catalogue(["sb-sc"], cache=False)
        assert report.symmetry_stats is None
        assert "symmetry:" not in report.describe()

    def test_catalogue_verdicts_match_with_and_without_symmetry(self, tmp_path):
        with symmetry("off"):
            off = run_catalogue(cache=VerdictCache(tmp_path / "off")).verdicts()
        with symmetry("1"):
            on = run_catalogue(cache=VerdictCache(tmp_path / "on")).verdicts()
        assert on == off

    def test_stats_delta_only_counts_new_work(self):
        before = sym.symmetry_stats_snapshot()
        assert all(v == 0 for v in sym.symmetry_stats_delta(before).values())


class TestCli:
    def test_symmetry_report(self, capsys):
        assert analyze_cli.main(["--symmetry", "sb-sc", "fig6-armv8-violation"]) == 0
        out = capsys.readouterr().out
        assert "canonical fingerprint" in out
        assert "independence partition" in out
        assert "program(s) already in canonical form" in out

    def test_symmetry_json(self, capsys):
        assert analyze_cli.main(["--symmetry", "--json", "sb-sc"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 1
        assert set(payload[0]) >= {
            "name",
            "canonical_fingerprint",
            "orbit_size",
            "group_size",
            "group_capped",
            "is_canonical_form",
            "independence_partition",
        }

    def test_json_requires_symmetry(self, capsys):
        with pytest.raises(SystemExit):
            analyze_cli.main(["--json"])
