"""Tests for compilation correctness (§5.3, Thm 6.2), the §5 searches and Thm 6.3."""

import pytest

from repro.compile import (
    CompilationError,
    check_program_compilation,
    compile_program,
    construct_total_order,
    find_compilation_violation,
    translate_arm_execution,
)
from repro.armv8 import ArmLoad, ArmStore, arm_allowed_executions
from repro.core.events import SEQCST, UNORDERED
from repro.core.js_model import FINAL_MODEL, ORIGINAL_MODEL, is_valid
from repro.imm import (
    armv7_consistent,
    armv8_unisize_consistent,
    check_unisize_compilation,
    imm_consistent,
    power_consistent,
    riscv_consistent,
    uni_executions,
    x86_consistent,
)
from repro.lang.ast import Load, Program, Register, Store, Thread, TypedAccess, Wait
from repro.lang.enumeration import ground_executions
from repro.lang.memory import INT32, new_shared_array_buffer, new_typed_array
from repro.litmus.catalogue import (
    fig1_message_passing,
    fig6_armv8_violation,
    fig8_sc_drf_violation,
    fig13_wait_notify,
    load_buffering,
    message_passing,
    rmw_exchange_mutex,
    store_buffering,
)
from repro.search import (
    SearchBounds,
    generate_programs,
    search_sc_drf_violation,
    semantically_dead,
    syntactically_dead,
)
from repro.search.deadness import ORIGINAL_MODEL as _  # noqa: F401  (re-export sanity)
from repro.core.execution import CandidateExecution
from repro.core.events import Event, make_init_event


class TestCompilationScheme:
    def test_fig1_compiles_to_expected_mnemonics(self):
        compiled = compile_program(fig1_message_passing().program)
        thread0 = compiled.arm.threads[0].instructions
        assert isinstance(thread0[0], ArmStore) and not thread0[0].release
        assert isinstance(thread0[1], ArmStore) and thread0[1].release
        thread1 = compiled.arm.threads[1].instructions
        assert isinstance(thread1[0], ArmLoad) and thread1[0].acquire

    def test_rmw_compiles_to_exclusive_pair(self):
        compiled = compile_program(rmw_exchange_mutex().program)
        instructions = compiled.arm.threads[0].instructions
        assert isinstance(instructions[0], ArmLoad) and instructions[0].exclusive
        assert isinstance(instructions[1], ArmStore) and instructions[1].exclusive

    def test_wait_notify_rejected(self):
        with pytest.raises(CompilationError):
            compile_program(fig13_wait_notify().program)

    def test_memory_layout_round_trip(self):
        compiled = compile_program(fig1_message_passing().program)
        block, offset = compiled.layout.block_of(4)
        assert block == "b" and offset == 4


class TestTranslationAndTotConstruction:
    def test_translated_executions_are_well_formed_and_witnessable(self):
        compiled = compile_program(store_buffering(True).program)
        count = 0
        for ground in arm_allowed_executions(compiled.arm):
            translated = translate_arm_execution(compiled, ground.execution)
            assert translated.execution.is_well_formed(require_tot=False)
            tot = construct_total_order(translated, ground.execution)
            assert tot is not None
            assert is_valid(translated.execution.with_witness(tot=tot), FINAL_MODEL)
            count += 1
        assert count > 0

    def test_translation_preserves_modes(self):
        compiled = compile_program(fig1_message_passing().program)
        ground = next(iter(arm_allowed_executions(compiled.arm)))
        translated = translate_arm_execution(compiled, ground.execution)
        modes = {e.ord for e in translated.execution.events if not e.is_init}
        assert SEQCST in modes and UNORDERED in modes


class TestCompilationCorrectness:
    def test_fig6_violates_compilation_under_original_model(self):
        violation = find_compilation_violation(
            fig6_armv8_violation().program, ORIGINAL_MODEL
        )
        assert violation is not None
        assert violation.event_count == 6
        assert violation.byte_location_count == 2

    def test_fig6_compilation_correct_under_final_model(self):
        result = check_program_compilation(fig6_armv8_violation().program, FINAL_MODEL)
        assert result.correct
        assert result.construction_complete

    @pytest.mark.parametrize(
        "test",
        [fig1_message_passing(), store_buffering(True), fig8_sc_drf_violation(),
         message_passing(True, False), rmw_exchange_mutex()],
        ids=lambda t: t.name,
    )
    def test_catalogue_programs_compile_correctly_under_final_model(self, test):
        result = check_program_compilation(test.program, FINAL_MODEL)
        assert result.correct, result.summary()

    def test_operational_backend_agrees_on_fig1(self):
        result = check_program_compilation(
            fig1_message_passing().program, FINAL_MODEL, use_operational=True
        )
        assert result.correct


class TestDeadnessAndSearch:
    def _fig11_execution(self, tot):
        """The Fig. 11 spurious counter-example."""
        init = make_init_event("b", 4)
        a = Event(eid=1, tid=0, ord=SEQCST, block="b", index=0, writes=(1, 0, 0, 0))
        b = Event(eid=2, tid=1, ord=UNORDERED, block="b", index=0, writes=(2, 0, 0, 0))
        c = Event(eid=3, tid=1, ord=SEQCST, block="b", index=0, reads=(1, 0, 0, 0))
        return CandidateExecution.build(
            events=[init, a, b, c],
            sb=[(2, 3)],
            rbf={(k, 1, 3) for k in range(4)},
            tot=tot,
        )

    def test_fig11_is_invalid_but_not_dead(self):
        execution = self._fig11_execution(tot=[0, 1, 2, 3])
        assert not is_valid(execution, ORIGINAL_MODEL)
        assert not semantically_dead(execution, ORIGINAL_MODEL)
        assert not syntactically_dead(execution, ORIGINAL_MODEL)

    def test_hb_forced_violation_is_dead(self):
        # The stale-read message-passing execution violates Happens-Before
        # Consistency (3), which does not mention tot at all: both the exact
        # and the syntactic deadness checks classify it as dead.
        init = make_init_event("b", 8)
        data = Event(eid=1, tid=0, ord=UNORDERED, block="b", index=0, writes=(3, 0, 0, 0))
        flag_w = Event(eid=2, tid=0, ord=SEQCST, block="b", index=4, writes=(1, 0, 0, 0))
        flag_r = Event(eid=3, tid=1, ord=SEQCST, block="b", index=4, reads=(1, 0, 0, 0))
        stale = Event(eid=4, tid=1, ord=UNORDERED, block="b", index=0, reads=(0, 0, 0, 0))
        rbf = {(k, 0, 4) for k in range(4)} | {(k, 2, 3) for k in range(4, 8)}
        execution = CandidateExecution.build(
            events=[init, data, flag_w, flag_r, stale],
            sb=[(1, 2), (3, 4)],
            rbf=rbf,
            tot=[0, 1, 2, 3, 4],
        )
        assert semantically_dead(execution, FINAL_MODEL)
        assert syntactically_dead(execution, FINAL_MODEL)

    def test_fig8_execution_is_semantically_dead_but_not_syntactically(self):
        # The Fig. 8 SC-DRF violation (under the corrected model) is a dead
        # counter-example, but its invalidity is a tot-dependent SC-atomics
        # violation the syntactic approximation cannot certify — exactly the
        # "may discard legitimate counter-examples" caveat of §5.2.
        init = make_init_event("b", 4)
        a = Event(eid=1, tid=0, ord=SEQCST, block="b", index=0, writes=(1, 0, 0, 0))
        b = Event(eid=2, tid=1, ord=SEQCST, block="b", index=0, writes=(2, 0, 0, 0))
        c = Event(eid=3, tid=1, ord=SEQCST, block="b", index=0, reads=(1, 0, 0, 0))
        d = Event(eid=4, tid=1, ord=UNORDERED, block="b", index=0, reads=(2, 0, 0, 0))
        execution = CandidateExecution.build(
            events=[init, a, b, c, d],
            sb=[(2, 3), (2, 4), (3, 4)],
            rbf={(k, 1, 3) for k in range(4)} | {(k, 2, 4) for k in range(4)},
            tot=[0, 2, 1, 3, 4],
        )
        assert semantically_dead(execution, FINAL_MODEL)
        assert not syntactically_dead(execution, FINAL_MODEL)
        # The original model, by contrast, admits this execution (Fig. 8).
        assert not semantically_dead(execution, ORIGINAL_MODEL)

    def test_shape_generator_respects_bounds(self):
        bounds = SearchBounds(
            max_accesses_per_thread=1, max_total_accesses=2, guarded_observer=False,
            values=(1,),
        )
        programs = list(generate_programs(bounds))
        assert programs
        from repro.search import count_accesses

        assert all(count_accesses(p) <= 2 for p in programs)

    def test_sc_drf_search_finds_fig8_under_original_model(self):
        bounds = SearchBounds(
            threads=2, max_accesses_per_thread=2, max_total_accesses=4,
            locations=1, values=(1, 2), guarded_observer=True,
        )
        report = search_sc_drf_violation(bounds, ORIGINAL_MODEL)
        assert report.found
        assert report.counterexample.event_count == 4
        assert report.counterexample.location_count == 1

    def test_sc_drf_search_finds_nothing_under_final_model_in_small_bound(self):
        bounds = SearchBounds(
            threads=2, max_accesses_per_thread=2, max_total_accesses=3,
            locations=1, values=(1, 2), guarded_observer=False,
        )
        report = search_sc_drf_violation(bounds, FINAL_MODEL)
        assert not report.found
        assert report.programs_examined > 0


class TestUniSizeCompilation:
    def _uni_pairs(self, program):
        for ground in ground_executions(program):
            execution = ground.execution
            if execution.has_partial_overlaps() or not execution.rf_inverse_functional():
                continue
            yield from uni_executions(execution)

    def test_architecture_models_forbid_sc_violations_for_fenced_sb(self):
        program = store_buffering(True).program
        models = (x86_consistent, power_consistent, riscv_consistent,
                  armv7_consistent, armv8_unisize_consistent, imm_consistent)
        for uni in self._uni_pairs(program):
            # The relaxed SB outcome (both loads read the initial zero) must
            # be rejected by every target model when both accesses are SeqCst.
            reads = [e for e in uni.events() if e.is_read]
            if all(int.from_bytes(bytes(r.reads), "little") == 0 for r in reads):
                for model in models:
                    assert not model(uni), model.__name__

    def test_x86_allows_relaxed_sb_for_unordered_accesses(self):
        program = store_buffering(False).program
        relaxed_seen = False
        for uni in self._uni_pairs(program):
            reads = [e for e in uni.events() if e.is_read]
            if all(int.from_bytes(bytes(r.reads), "little") == 0 for r in reads):
                if x86_consistent(uni):
                    relaxed_seen = True
        assert relaxed_seen

    def test_theorem_63_bounded_check_on_catalogue_programs(self):
        programs = [
            fig1_message_passing().program,
            store_buffering(True).program,
            load_buffering(True).program,
            message_passing(True, False).program,
        ]
        report = check_unisize_compilation(programs, FINAL_MODEL)
        assert report.correct
        assert set(report.per_architecture) == {"x86-tso", "power", "riscv", "armv7", "armv8"}
        for result in report.per_architecture.values():
            assert result.architecture_allowed > 0
