"""Cache & memo hygiene regressions (PR 5 satellites).

* ``VerdictCache.put`` must never swallow control-flow exceptions, must
  reclaim its temp file on every exit path, and stale ``*.tmp`` debris is
  swept when a cache directory is opened;
* ``program_fingerprint`` must never collide across program types, never
  serve a class-level memo, and must refuse non-dataclass programs loudly;
* the shape-table memos are bounded and can be shipped to workers through
  the pool initializer;
* the benchmark regression gate exits non-zero past the threshold and
  refuses a baseline that is its own output file.
"""

import dataclasses
import importlib.util
import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro.dispatch.cache as cache_mod
from repro.dispatch import VerdictCache, program_fingerprint
from repro.dispatch.cache import MISS, STALE_TMP_SECONDS
from repro.dispatch.pool import imap_ordered, parallel_map
import repro.search.shapes as shapes_mod
from repro.search.shapes import (
    SearchBounds,
    _BoundedMemo,
    _sized_combos,
    _thread_shapes,
    install_shape_tables,
    shape_tables,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


# ---------------------------------------------------------------------------
# VerdictCache.put / stale-tmp sweep
# ---------------------------------------------------------------------------


def _force_sweep(directory) -> None:
    cache_mod._swept_directories.discard(str(directory))


def test_stale_tmp_swept_on_cache_open(tmp_path):
    cache_dir = tmp_path / "verdicts"
    bucket = cache_dir / "ab"
    bucket.mkdir(parents=True)
    stale = bucket / "orphanXYZ.tmp"
    stale.write_text("debris from an interrupted writer")
    old = time.time() - 2 * STALE_TMP_SECONDS
    os.utime(stale, (old, old))
    fresh = bucket / "liveABC.tmp"
    fresh.write_text("a concurrent writer might still hold this")
    entry = bucket / "abcd.json"
    entry.write_text(json.dumps({"key": "abcd", "verdict": True}))

    _force_sweep(cache_dir)
    VerdictCache(cache_dir)
    assert not stale.exists()  # old debris reclaimed
    assert fresh.exists()  # young temp files are never touched
    assert entry.exists()  # real entries are never touched


def test_tmp_sweep_runs_once_per_process(tmp_path):
    cache_dir = tmp_path / "verdicts"
    bucket = cache_dir / "cd"
    bucket.mkdir(parents=True)
    _force_sweep(cache_dir)
    VerdictCache(cache_dir)
    # Debris created after the first open is left for the next process.
    stale = bucket / "later.tmp"
    stale.write_text("x")
    old = time.time() - 2 * STALE_TMP_SECONDS
    os.utime(stale, (old, old))
    VerdictCache(cache_dir)
    assert stale.exists()


def _tmp_files(cache_dir):
    return list(Path(cache_dir).glob("**/*.tmp"))


def test_put_unserialisable_verdict_is_swallowed_and_clean(tmp_path):
    cache = VerdictCache(tmp_path / "verdicts")
    key = cache.key("probe")
    cache.put(key, object())  # json.dump raises TypeError
    assert cache.get(key) is MISS
    assert cache.writes == 0
    assert _tmp_files(tmp_path) == []


def test_put_keyboard_interrupt_propagates_and_cleans_tmp(tmp_path, monkeypatch):
    cache = VerdictCache(tmp_path / "verdicts")
    key = cache.key("probe")

    def interrupted_replace(src, dst):
        raise KeyboardInterrupt

    monkeypatch.setattr(os, "replace", interrupted_replace)
    with pytest.raises(KeyboardInterrupt):
        cache.put(key, {"v": 1})
    monkeypatch.undo()
    assert _tmp_files(tmp_path) == []
    assert cache.get(key) is MISS
    assert cache.writes == 0


def test_put_io_failure_is_swallowed_and_clean(tmp_path, monkeypatch):
    cache = VerdictCache(tmp_path / "verdicts")
    key = cache.key("probe")

    def failing_replace(src, dst):
        raise OSError("ENOSPC")

    monkeypatch.setattr(os, "replace", failing_replace)
    cache.put(key, {"v": 1})  # must not raise
    monkeypatch.undo()
    assert _tmp_files(tmp_path) == []
    assert cache.writes == 0
    # ...and the cache still works afterwards.
    cache.put(key, {"v": 1})
    assert cache.get(key) == {"v": 1}


# ---------------------------------------------------------------------------
# program_fingerprint hardening
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class _ProgramLike:
    name: str
    buffers: tuple
    threads: tuple
    description: str = ""


@dataclasses.dataclass(frozen=True)
class _OtherProgramLike:
    name: str
    buffers: tuple
    threads: tuple
    description: str = ""


@dataclasses.dataclass(frozen=True)
class _SlottedProgramLike:
    __slots__ = ("name", "buffers", "threads", "description")
    name: str
    buffers: tuple
    threads: tuple
    description: str


class _PoisonedProgramLike(_ProgramLike):
    # A class-level attribute of the memo's name: reading the memo through
    # plain getattr would serve this one value for EVERY instance.
    pass


_PoisonedProgramLike._fingerprint_memo = "poisoned-class-level-hash"


def test_distinct_program_types_never_collide():
    a = _ProgramLike("p", (1, 2), (3,))
    b = _OtherProgramLike("p", (1, 2), (3,))
    assert program_fingerprint(a) != program_fingerprint(b)


def test_name_and_description_stay_excluded():
    a = _ProgramLike("first", (1, 2), (3,), description="x")
    b = _ProgramLike("second", (1, 2), (3,), description="y")
    assert program_fingerprint(a) == program_fingerprint(b)


def test_class_level_memo_is_never_served():
    a = _PoisonedProgramLike("p", (1,), (2,))
    b = _PoisonedProgramLike("q", (9,), (8,))
    fa, fb = program_fingerprint(a), program_fingerprint(b)
    assert fa != "poisoned-class-level-hash"
    assert fb != "poisoned-class-level-hash"
    assert fa != fb


def test_slotted_program_recomputes_consistently():
    a = _SlottedProgramLike("p", (1, 2), (3,), "")
    first = program_fingerprint(a)
    assert program_fingerprint(a) == first  # no memo slot: recomputed, stable


def test_non_dataclass_program_raises_loudly():
    class Impostor:
        buffers = (1,)
        threads = (2,)

    with pytest.raises(TypeError):
        program_fingerprint(Impostor())


def test_fingerprint_memoised_on_instance():
    a = _ProgramLike("p", (1, 2), (3,))
    first = program_fingerprint(a)
    assert a.__dict__["_fingerprint_memo"] == first
    assert program_fingerprint(a) == first


# ---------------------------------------------------------------------------
# bounded shape memos + worker shipping
# ---------------------------------------------------------------------------


def test_shape_memos_are_bounded():
    limit = shapes_mod._SHAPES_MEMO.limit
    reference = {}
    for extra in range(limit + 8):
        # Tiny, pairwise-distinct bounds: one value, one access per thread.
        bounds = SearchBounds(
            max_accesses_per_thread=1,
            max_total_accesses=2,
            values=(extra + 1,),
            guarded_observer=False,
        )
        reference[extra] = (bounds, len(_thread_shapes(bounds)))
        _sized_combos(bounds)
        assert len(shapes_mod._SHAPES_MEMO) <= limit
        assert len(shapes_mod._SIZED_MEMO) <= limit
    # Evicted entries rebuild to identical tables.
    bounds, expected = reference[0]
    assert len(_thread_shapes(bounds)) == expected


def test_bounded_memo_lru_keeps_recent_entries():
    memo = _BoundedMemo(2)
    memo.put("a", 1)
    memo.put("b", 2)
    assert memo.get("a") == 1  # refresh "a"
    memo.put("c", 3)  # evicts "b", the least recently used
    assert memo.get("b") is None
    assert memo.get("a") == 1
    assert memo.get("c") == 3


def test_install_shape_tables_seeds_fresh_process_state(monkeypatch):
    bounds = SearchBounds(max_programs=64)
    tables = shape_tables(bounds)
    # Simulate a freshly-spawned worker: empty memos, then the initializer.
    monkeypatch.setattr(shapes_mod, "_SHAPES_MEMO", _BoundedMemo(4))
    monkeypatch.setattr(shapes_mod, "_SIZED_MEMO", _BoundedMemo(4))
    install_shape_tables(tables)
    assert _thread_shapes(bounds) is tables[1]  # identity: no rebuild
    assert _sized_combos(bounds) is tables[3]


def _double(x):
    return 2 * x


def test_pool_initializer_plumbs_through():
    bounds = SearchBounds(max_programs=16)
    tables = shape_tables(bounds)
    results = list(
        imap_ordered(
            _double,
            list(range(8)),
            workers=2,
            initializer=install_shape_tables,
            initargs=(tables,),
        )
    )
    assert results == [2 * x for x in range(8)]
    assert parallel_map(
        _double,
        list(range(8)),
        workers=2,
        initializer=install_shape_tables,
        initargs=(tables,),
    ) == [2 * x for x in range(8)]


# ---------------------------------------------------------------------------
# the benchmark regression gate
# ---------------------------------------------------------------------------


def _load_gate_module():
    spec = importlib.util.spec_from_file_location(
        "run_benchmarks", REPO_ROOT / "benchmarks" / "run_benchmarks.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _snapshot(path, means):
    path.write_text(
        json.dumps(
            {
                "benchmarks": [
                    # Real pytest-benchmark snapshots carry both stats; the
                    # comparison reads "min" (single-round arms: min == mean).
                    {
                        "fullname": name,
                        "name": name,
                        "stats": {"mean": mean, "min": mean},
                    }
                    for name, mean in means.items()
                ]
            }
        )
    )


def test_compare_snapshots_counts_regressions(tmp_path):
    gate = _load_gate_module()
    current = tmp_path / "current.json"
    baseline = tmp_path / "baseline.json"
    _snapshot(current, {"a": 1.0, "b": 2.6, "only-current": 1.0})
    _snapshot(baseline, {"a": 1.0, "b": 2.0, "only-baseline": 1.0})
    assert gate.compare_snapshots(current, baseline, threshold=1.25) == 1
    assert gate.compare_snapshots(current, baseline, threshold=1.5) == 0


def test_gate_refuses_baseline_equal_to_output(tmp_path):
    """Same-day same-label rerun must not clobber-and-self-compare."""
    import datetime

    output = tmp_path / f"BENCH_{datetime.date.today().isoformat()}.json"
    _snapshot(output, {"a": 1.0})
    result = subprocess.run(
        [
            sys.executable,
            str(REPO_ROOT / "benchmarks" / "run_benchmarks.py"),
            "--output-dir",
            str(tmp_path),
            "--compare",
            str(output),
        ],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 2
    assert "own output" in result.stderr
    assert json.loads(output.read_text())["benchmarks"]  # baseline untouched


def test_gate_missing_baseline_is_an_error(tmp_path):
    result = subprocess.run(
        [
            sys.executable,
            str(REPO_ROOT / "benchmarks" / "run_benchmarks.py"),
            "--output-dir",
            str(tmp_path),
            "--compare",
            str(tmp_path / "no-such-baseline.json"),
        ],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 2
    assert "not found" in result.stderr
