"""The segment-log verdict store: durability, concurrency, migration, CLI.

Covers the crash-safety contract end to end: torn-tail recovery, the
SIGKILL-at-every-step compaction drill (via ``dispatch/faults`` plans fired
inside a forked child), multi-process interleaved writers, readers racing
compaction, eviction under write, the legacy-cache migration with its
read-back parity checker, backend selection/sniffing, and the
``repro-cache`` CLI.  The heavyweight true-``SIGKILL`` drills are
``chaos``-marked like the rest of the resilience suite.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.dispatch import (
    MISS,
    SegmentVerdictCache,
    VerdictCache,
    chain_initializers,
    is_segment_store,
    migrate_legacy,
    open_cache,
    resolve_backend,
    resolve_cache,
    resolve_checkpoint,
    supervised_map,
    warm_spec,
)
from repro.dispatch import cache as cache_module
from repro.dispatch import store as store_module
from repro.dispatch.store import (
    COMPACT_STEPS,
    HEADER_SIZE,
    MAGIC,
    _scan_records,
    _scan_with_resync,
    encode_record,
    main as cache_cli,
)
from repro.litmus.runner import run_catalogue

SRC = str(Path(__file__).resolve().parent.parent / "src")


def _subprocess_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    for var in ("REPRO_WORKERS", "REPRO_CACHE_BACKEND", "REPRO_CACHE_QUOTA",
                "REPRO_CHECKPOINT_DIR", "REPRO_FAULT_PLAN"):
        env.pop(var, None)
    return env


def _run_script(script: str, **popen_kwargs) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-c", textwrap.dedent(script)],
        env=_subprocess_env(),
        **popen_kwargs,
    )


# ---------------------------------------------------------------------------
# record format
# ---------------------------------------------------------------------------


class TestRecordFormat:
    def test_roundtrip_scan(self):
        buf = encode_record("k1", {"a": 1}) + encode_record("k2", [None, False])
        entries, consumed = _scan_records(buf)
        assert consumed == len(buf)
        assert [key for key, _off, _len in entries] == ["k1", "k2"]

    def test_scan_stops_at_torn_tail(self):
        good = encode_record("k1", 7)
        torn = encode_record("k2", "x" * 50)[: -10]
        entries, consumed = _scan_records(good + torn)
        assert [key for key, _o, _l in entries] == ["k1"]
        assert consumed == len(good)

    def test_scan_rejects_flipped_payload_byte(self):
        buf = bytearray(encode_record("k1", {"v": 1}))
        buf[HEADER_SIZE + 2] ^= 0xFF
        entries, consumed = _scan_records(bytes(buf))
        assert entries == [] and consumed == 0

    def test_resync_scan_salvages_after_corruption(self):
        a, b, c = (encode_record(k, k) for k in ("a", "b", "c"))
        mangled = bytearray(a + b + c)
        mangled[len(a) + HEADER_SIZE + 1] ^= 0xFF  # kill record b's payload
        records, regions = _scan_with_resync(bytes(mangled))
        assert [key for key, _o, _l in records] == ["a", "c"]
        assert len(regions) == 1
        start, end = regions[0]
        assert start == len(a) and end == len(a) + len(b)


# ---------------------------------------------------------------------------
# store basics
# ---------------------------------------------------------------------------


class TestSegmentStore:
    def test_roundtrip_and_miss(self, tmp_path):
        store = SegmentVerdictCache(tmp_path / "s")
        store.put("k", {"verdict": True})
        assert store.get("k") == {"verdict": True}
        assert store.get("absent") is MISS
        assert store.hits == 1 and store.misses == 1 and store.writes == 1

    def test_falsy_verdicts_are_not_misses(self, tmp_path):
        store = SegmentVerdictCache(tmp_path / "s")
        for key, verdict in (("f", False), ("n", None), ("z", 0), ("e", [])):
            store.put(key, verdict)
            assert store.get(key) == verdict
            assert store.get(key) is not MISS

    def test_latest_write_wins(self, tmp_path):
        store = SegmentVerdictCache(tmp_path / "s")
        store.put("k", 1)
        store.put("k", 2)
        assert store.get("k") == 2
        assert SegmentVerdictCache(tmp_path / "s").get("k") == 2

    def test_reopen_persistence_across_segments(self, tmp_path):
        store = SegmentVerdictCache(tmp_path / "s", segment_bytes=4096)
        expected = {}
        for i in range(150):
            key = f"key-{i:04d}"
            expected[key] = {"i": i}
            store.put(key, {"i": i})
        segments = list((tmp_path / "s").glob("seg-*.log"))
        assert len(segments) > 1  # the log actually rolled
        reopened = SegmentVerdictCache(tmp_path / "s", segment_bytes=4096)
        assert {k: reopened.get(k) for k in expected} == expected

    def test_get_or_compute(self, tmp_path):
        store = SegmentVerdictCache(tmp_path / "s")
        calls = []
        assert store.get_or_compute("k", lambda: calls.append(1) or 41) == 41
        assert store.get_or_compute("k", lambda: calls.append(1) or 99) == 41
        assert len(calls) == 1

    def test_stats_extends_base_counters(self, tmp_path):
        store = SegmentVerdictCache(tmp_path / "s")
        store.put("k", 1)
        stats = store.stats()
        for name in ("hits", "misses", "writes", "corrupt", "evictions",
                     "degraded", "backend", "segments", "keys"):
            assert name in stats
        assert stats["backend"] == "segments"
        assert stats["keys"] == 1

    def test_cross_instance_visibility(self, tmp_path):
        """Two instances on one directory model two processes sharing it."""
        a = SegmentVerdictCache(tmp_path / "s")
        b = SegmentVerdictCache(tmp_path / "s")
        a.put("k1", "from-a")
        assert b.get("k1") == "from-a"  # index refresh picks up the append
        b.put("k2", "from-b")
        assert a.get("k2") == "from-b"

    def test_unwritable_directory_degrades_to_read_only(self, tmp_path, monkeypatch):
        store = SegmentVerdictCache(tmp_path / "s")
        store.put("k", 1)

        def refuse(self, key, record):
            raise PermissionError(13, "disk says no")

        monkeypatch.setattr(SegmentVerdictCache, "_append", refuse)
        with pytest.warns(RuntimeWarning, match="read-only"):
            store.put("k2", 2)  # must not raise
        assert store.degraded
        store.put("k3", 3)  # later puts return immediately
        monkeypatch.undo()
        assert store.get("k") == 1  # hits still served
        assert store.get("k2") is MISS
        assert store.get("k3") is MISS


# ---------------------------------------------------------------------------
# torn tails
# ---------------------------------------------------------------------------


class TestTornTail:
    def _active_segment(self, directory: Path) -> Path:
        return sorted(directory.glob("seg-*.log"))[-1]

    def test_reopen_reads_everything_before_the_tear(self, tmp_path):
        directory = tmp_path / "s"
        store = SegmentVerdictCache(directory)
        for i in range(10):
            store.put(f"k{i}", i)
        with self._active_segment(directory).open("ab") as handle:
            handle.write(encode_record("torn", "x" * 100)[: -20])
        reopened = SegmentVerdictCache(directory)
        assert {f"k{i}": reopened.get(f"k{i}") for i in range(10)} == {
            f"k{i}": i for i in range(10)
        }
        assert reopened.get("torn") is MISS

    def test_put_repairs_the_tear_and_appends(self, tmp_path):
        directory = tmp_path / "s"
        store = SegmentVerdictCache(directory)
        store.put("k0", 0)
        segment = self._active_segment(directory)
        intact = segment.stat().st_size
        with segment.open("ab") as handle:
            handle.write(MAGIC + b"\xff" * 40)
        writer = SegmentVerdictCache(directory)
        writer.put("k1", 1)
        # The tear was truncated away before the append: a full scan of the
        # segment now decodes end to end.
        buf = segment.read_bytes()
        entries, consumed = _scan_records(buf)
        assert consumed == len(buf)
        assert [key for key, _o, _l in entries] == ["k0", "k1"]
        assert buf[:intact] == buf[:intact]  # committed prefix untouched
        assert SegmentVerdictCache(directory).get("k1") == 1

    def test_repaired_tear_is_visible_to_a_stale_reader(self, tmp_path):
        """A reader that saw the torn tail must see records written over it."""
        directory = tmp_path / "s"
        store = SegmentVerdictCache(directory)
        store.put("k0", 0)
        with self._active_segment(directory).open("ab") as handle:
            handle.write(MAGIC + b"\xff" * 40)
        reader = SegmentVerdictCache(directory)  # remembers the tear
        writer = SegmentVerdictCache(directory)
        writer.put("k1", 1)
        assert reader.get("k1") == 1


# ---------------------------------------------------------------------------
# compaction
# ---------------------------------------------------------------------------


def _populated_store(directory, segment_bytes=2048, keys=120):
    store = SegmentVerdictCache(directory, segment_bytes=segment_bytes)
    expected = {}
    for i in range(keys):
        key = f"k{i:03d}"
        expected[key] = {"v": i}
        store.put(key, {"v": i})
    # Overwrite a third so compaction has shadowed records to drop.
    for i in range(0, keys, 3):
        key = f"k{i:03d}"
        expected[key] = {"v": i + 1000}
        store.put(key, {"v": i + 1000})
    return store, expected


class TestCompaction:
    def test_compaction_preserves_every_key_and_shrinks(self, tmp_path):
        directory = tmp_path / "s"
        store, expected = _populated_store(directory)
        before_files = len(list(directory.glob("seg-*.log")))
        before_bytes = sum(p.stat().st_size for p in directory.glob("seg-*.log"))
        summary = store.compact()
        assert not summary["skipped"]
        assert summary["live_records"] == len(expected)
        assert summary["reclaimed_bytes"] > 0
        after_files = len(list(directory.glob("seg-*.log")))
        after_bytes = sum(p.stat().st_size for p in directory.glob("seg-*.log"))
        assert after_files <= before_files
        assert after_bytes < before_bytes
        # Same instance and a cold reopen both read every key.
        assert {k: store.get(k) for k in expected} == expected
        reopened = SegmentVerdictCache(directory, segment_bytes=2048)
        assert {k: reopened.get(k) for k in expected} == expected

    def test_writes_during_compaction_survive(self, tmp_path):
        directory = tmp_path / "s"
        store, expected = _populated_store(directory)
        summary = store.compact()
        assert not summary["skipped"]
        store.put("late", "after-compaction")
        assert SegmentVerdictCache(directory).get("late") == "after-compaction"

    def test_concurrent_compactor_skips(self, tmp_path):
        import fcntl

        directory = tmp_path / "s"
        store, _expected = _populated_store(directory)
        lock_fd = os.open(directory / "compact.lock", os.O_RDWR | os.O_CREAT)
        try:
            fcntl.flock(lock_fd, fcntl.LOCK_EX)
            assert store.compact()["skipped"]
        finally:
            os.close(lock_fd)

    @pytest.mark.parametrize("step", range(len(COMPACT_STEPS)))
    def test_crash_at_every_compaction_step_loses_nothing(self, tmp_path, step):
        """The deterministic kill drill: fault-plan crashes at each step.

        ``crash@N`` fires ``os._exit`` inside the forked child exactly at
        compaction checkpoint ``N`` (start, victims locked, merged segment
        written, swapped in, shadows unlinked); the parent then reopens the
        directory cold and must find every committed verdict.
        """
        directory = tmp_path / "s"
        _store, expected = _populated_store(directory)
        pid = os.fork()
        if pid == 0:  # child: never return into pytest
            try:
                SegmentVerdictCache(directory, segment_bytes=2048).compact(
                    fault_plan=f"crash@{step}"
                )
            finally:
                os._exit(0)
        _pid, status = os.waitpid(pid, 0)
        assert os.waitstatus_to_exitcode(status) == 87  # died at the kill point
        survivor = SegmentVerdictCache(directory, segment_bytes=2048)
        assert {k: survivor.get(k) for k in expected} == expected
        # And the store is fully operational: writes, then a real compaction.
        survivor.put("post-crash", True)
        assert not survivor.compact()["skipped"]
        reopened = SegmentVerdictCache(directory, segment_bytes=2048)
        assert {k: reopened.get(k) for k in expected} == expected
        assert reopened.get("post-crash") is True


# ---------------------------------------------------------------------------
# fsck
# ---------------------------------------------------------------------------


class TestFsck:
    def test_clean_store_reports_clean(self, tmp_path):
        store, expected = _populated_store(tmp_path / "s")
        report = store.fsck()
        assert report["corrupt_regions"] == 0
        assert report["records"] >= len(expected)

    def test_fsck_finds_and_repairs_mid_file_corruption(self, tmp_path):
        directory = tmp_path / "s"
        store = SegmentVerdictCache(directory)
        for i in range(20):
            store.put(f"k{i:02d}", {"i": i})
        segment = sorted(directory.glob("seg-*.log"))[-1]
        buf = bytearray(segment.read_bytes())
        # Mangle the *first* record's payload: later records must survive.
        buf[HEADER_SIZE + 1] ^= 0xFF
        segment.write_bytes(bytes(buf))

        checker = SegmentVerdictCache(directory)
        report = checker.fsck()
        assert report["corrupt_regions"] == 1
        assert report["records"] == 19  # resync salvaged everything after

        repaired = checker.fsck(repair=True)
        assert repaired["repaired_segments"] == 1
        sidecars = list(directory.glob("*.corrupt"))
        assert len(sidecars) == 1 and sidecars[0].stat().st_size > 0
        assert checker.fsck()["corrupt_regions"] == 0
        reopened = SegmentVerdictCache(directory)
        assert reopened.get("k00") is MISS  # the mangled record is gone
        assert {f"k{i:02d}": reopened.get(f"k{i:02d}") for i in range(1, 20)} == {
            f"k{i:02d}": {"i": i} for i in range(1, 20)
        }


# ---------------------------------------------------------------------------
# quota eviction at segment granularity
# ---------------------------------------------------------------------------


class TestSegmentEviction:
    def test_eviction_drops_oldest_segments_first(self, tmp_path):
        directory = tmp_path / "s"
        store = SegmentVerdictCache(
            directory, quota_bytes=6000, segment_bytes=2048
        )
        for i in range(200):
            store.put(f"k{i:03d}", {"i": i})
        store._enforce_quota()
        assert store.evictions > 0
        assert store.total_bytes() <= 6000
        # Surviving keys read back correct; evicted ones are plain misses.
        survivors = 0
        for i in range(200):
            verdict = store.get(f"k{i:03d}")
            if verdict is not MISS:
                assert verdict == {"i": i}
                survivors += 1
        assert 0 < survivors < 200
        # The newest keys live in the newest segments and survive LRU.
        assert store.get("k199") == {"i": 199}

    def test_sidecars_evicted_before_live_segments(self, tmp_path):
        directory = tmp_path / "s"
        store = SegmentVerdictCache(directory, quota_bytes=10 ** 6)
        store.put("k", 1)
        debris = directory / "seg-00000001.corrupt"
        debris.write_bytes(b"x" * 4096)
        store.quota_bytes = store.total_bytes() - 1  # just over quota
        store._enforce_quota()
        assert not debris.exists()  # sidecar went first, despite being newest
        assert store.get("k") == 1

    def test_active_segment_rolls_before_eviction(self, tmp_path):
        directory = tmp_path / "s"
        store = SegmentVerdictCache(
            directory, quota_bytes=512, segment_bytes=1 << 20
        )
        for i in range(10):
            store.put(f"k{i}", {"i": i})
        store._enforce_quota()  # single over-quota active segment
        # The store remains writable and consistent afterwards.
        store.put("fresh", True)
        assert store.get("fresh") is True
        assert SegmentVerdictCache(directory).get("fresh") is True


# ---------------------------------------------------------------------------
# multi-process concurrency
# ---------------------------------------------------------------------------


WRITER_SCRIPT = """
import sys
from repro.dispatch import SegmentVerdictCache
directory, lane, count = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
store = SegmentVerdictCache(directory, segment_bytes=2048)
for i in range(count):
    # Interleave lanes over a shared key space: both lanes write identical
    # values per key (the store is content-addressed), so any interleaving
    # must read back exactly this mapping.
    store.put(f"key-{i:04d}", {"value": i})
    store.put(f"lane-{lane}-{i:04d}", {"lane": lane, "value": i})
print("done", flush=True)
"""


class TestConcurrentAccess:
    def test_interleaved_writers_lose_nothing(self, tmp_path):
        directory = tmp_path / "s"
        count = 150
        writers = [
            subprocess.Popen(
                [sys.executable, "-c", WRITER_SCRIPT, str(directory), str(lane), str(count)],
                env=_subprocess_env(),
            )
            for lane in (0, 1)
        ]
        assert [w.wait() for w in writers] == [0, 0]
        store = SegmentVerdictCache(directory, segment_bytes=2048)
        for i in range(count):
            assert store.get(f"key-{i:04d}") == {"value": i}
            for lane in (0, 1):
                assert store.get(f"lane-{lane}-{i:04d}") == {
                    "lane": lane, "value": i
                }

    def test_reader_during_compaction_never_reads_wrong(self, tmp_path):
        directory = tmp_path / "s"
        done = tmp_path / "done"
        count = 80
        store, expected = _populated_store(directory, keys=count)
        reader_script = f"""
        import json, os, time
        from repro.dispatch import SegmentVerdictCache, MISS
        expected = json.loads({json.dumps(expected)!r})
        store = SegmentVerdictCache({str(directory)!r}, segment_bytes=2048)
        while not os.path.exists({str(done)!r}):
            for key, value in expected.items():
                verdict = store.get(key)
                assert verdict is MISS or verdict == value, (key, verdict)
        final = {{key: store.get(key) for key in expected}}
        assert final == expected, final
        """
        reader = _run_script(reader_script)
        try:
            for round_number in range(4):
                for i in range(count):
                    store.put(f"k{i:03d}", expected[f"k{i:03d}"])
                assert not store.compact()["skipped"]
        finally:
            done.touch()
        assert reader.wait(timeout=60) == 0

    def test_eviction_under_write_stays_bounded_and_correct(self, tmp_path):
        directory = tmp_path / "s"
        quota = 8192
        script = f"""
        import sys
        from repro.dispatch import SegmentVerdictCache
        lane = int(sys.argv[1])
        store = SegmentVerdictCache(
            {str(directory)!r}, quota_bytes={quota}, segment_bytes=2048
        )
        for i in range(300):
            store.put(f"lane-{{lane}}-{{i:04d}}", {{"lane": lane, "i": i}})
        """
        writers = [
            subprocess.Popen(
                [sys.executable, "-c", textwrap.dedent(script), str(lane)],
                env=_subprocess_env(),
            )
            for lane in (0, 1)
        ]
        assert [w.wait() for w in writers] == [0, 0]
        store = SegmentVerdictCache(directory, segment_bytes=2048)
        # Bounded: eviction kept the store near the quota (the final
        # interval of up to QUOTA_CHECK_INTERVAL writes may overshoot).
        assert store.total_bytes() < quota * 4
        # Correct: every surviving key reads back exactly what was written.
        survivors = 0
        for lane in (0, 1):
            for i in range(300):
                verdict = store.get(f"lane-{lane}-{i:04d}")
                if verdict is not MISS:
                    assert verdict == {"lane": lane, "i": i}
                    survivors += 1
        assert survivors > 0

    def test_two_supervised_sweeps_share_one_store(self, tmp_path):
        """Satellite: two separate supervised processes, one store,
        verdicts bit-identical to serial and no committed entry lost."""
        directory = tmp_path / "verdicts"
        script = f"""
        from repro.dispatch import open_cache
        from repro.litmus.runner import run_catalogue
        cache = open_cache({str(directory)!r}, backend="segments")
        report = run_catalogue(cache=cache, workers=2)
        assert report.passed
        """
        sweeps = [_run_script(script) for _ in range(2)]
        assert [s.wait(timeout=600) for s in sweeps] == [0, 0]
        assert is_segment_store(directory)
        serial = run_catalogue(cache=False)
        warm = run_catalogue(cache=open_cache(directory))
        assert warm.verdicts() == serial.verdicts()
        # Fully warm: every verdict came from the store, none recomputed.
        assert warm.cache_stats is not None
        assert warm.cache_stats["backend"] == "segments"
        assert warm.cache_stats["writes"] == 0
        assert warm.cache_stats["misses"] == 0


# ---------------------------------------------------------------------------
# migration
# ---------------------------------------------------------------------------


class TestMigration:
    def test_migrate_with_parity_and_sniffed_reopen(self, tmp_path):
        directory = tmp_path / "cache"
        legacy = VerdictCache(directory)
        expected = {}
        for i in range(40):
            key = legacy.key("unit", i)
            expected[key] = {"verdict": i % 3, "list": [i]}
            legacy.put(key, expected[key])
        report = migrate_legacy(directory)
        assert report["migrated"] == 40
        assert report["parity_failures"] == []
        assert report["legacy_removed"]
        assert not list(directory.glob("*/*.json"))
        # An unconfigured open now sniffs the segment layout.
        store = open_cache(directory)
        assert isinstance(store, SegmentVerdictCache)
        assert {k: store.get(k) for k in expected} == expected

    def test_corrupt_legacy_entry_quarantined_not_migrated(self, tmp_path):
        directory = tmp_path / "cache"
        legacy = VerdictCache(directory)
        good_key = legacy.key("unit", 1)
        legacy.put(good_key, "good")
        bogus = directory / "zz" / ("f" * 64 + ".json")
        bogus.parent.mkdir(parents=True)
        bogus.write_text("{not json", encoding="utf-8")
        report = migrate_legacy(directory)
        assert report["migrated"] == 1
        assert report["corrupt_legacy"] == 1
        assert report["legacy_removed"]
        assert list(directory.glob("*/*.corrupt"))  # preserved for post-mortem
        assert open_cache(directory).get(good_key) == "good"

    def test_keep_legacy_leaves_files_in_place(self, tmp_path):
        directory = tmp_path / "cache"
        legacy = VerdictCache(directory)
        key = legacy.key("unit", 1)
        legacy.put(key, 1)
        report = migrate_legacy(directory, remove_legacy=False)
        assert report["parity_failures"] == [] and not report["legacy_removed"]
        assert list(directory.glob("*/*.json"))
        assert SegmentVerdictCache(directory).get(key) == 1

    def test_migrated_catalogue_bit_identical_to_cache_free(self, tmp_path):
        """The acceptance criterion: populate legacy via a real catalogue
        sweep, migrate, and the migrated store reproduces the cache-free
        verdicts bit for bit with zero recomputation."""
        directory = tmp_path / "cache"
        baseline = run_catalogue(cache=False)
        populated = run_catalogue(cache=VerdictCache(directory))
        assert populated.verdicts() == baseline.verdicts()
        report = migrate_legacy(directory)
        assert report["migrated"] > 0 and report["parity_failures"] == []
        migrated = run_catalogue(cache=open_cache(directory))
        assert migrated.verdicts() == baseline.verdicts()
        assert migrated.cache_stats["backend"] == "segments"
        assert migrated.cache_stats["misses"] == 0  # nothing recomputed
        assert migrated.cache_stats["writes"] == 0


# ---------------------------------------------------------------------------
# backend selection and transport
# ---------------------------------------------------------------------------


class TestBackendSelection:
    def test_explicit_argument_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv(cache_module.BACKEND_ENV, "segments")
        assert resolve_backend("files", tmp_path) == "files"
        assert isinstance(
            open_cache(tmp_path / "x", backend="files"), VerdictCache
        )

    def test_environment_selects_segments(self, tmp_path, monkeypatch):
        monkeypatch.setenv(cache_module.BACKEND_ENV, "segments")
        cache = open_cache(tmp_path / "s")
        assert isinstance(cache, SegmentVerdictCache)
        monkeypatch.setenv(cache_module.CACHE_ENV, str(tmp_path / "s"))
        assert isinstance(resolve_cache(None), SegmentVerdictCache)

    def test_sniffing_prefers_existing_segment_layout(self, tmp_path):
        directory = tmp_path / "s"
        SegmentVerdictCache(directory).put("k", 1)
        assert resolve_backend(None, directory) == "segments"
        assert resolve_backend(None, tmp_path / "empty") == "files"

    def test_unknown_backend_warns_once_and_falls_back(self, tmp_path, monkeypatch):
        monkeypatch.setenv(cache_module.BACKEND_ENV, "bogus-backend-name")
        with pytest.warns(RuntimeWarning, match="unknown cache backend"):
            assert resolve_backend(None, tmp_path) == "files"

    def test_spec_roundtrip_both_backends(self, tmp_path):
        files = VerdictCache(tmp_path / "f")
        assert len(files.spec) == 2
        rebuilt = VerdictCache.from_spec(files.spec)
        assert type(rebuilt) is VerdictCache

    def test_segment_spec_roundtrip_is_shared_per_process(self, tmp_path):
        store = SegmentVerdictCache(tmp_path / "s")
        store.put("k", 1)
        assert store.spec[2] == "segments"
        a = VerdictCache.from_spec(store.spec)
        b = VerdictCache.from_spec(store.spec)
        assert isinstance(a, SegmentVerdictCache)
        assert a is b  # one scanned index per process
        assert a.get("k") == 1

    def test_warm_spec_populates_the_shared_registry(self, tmp_path):
        store = SegmentVerdictCache(tmp_path / "w")
        warm_spec(store.spec)
        assert VerdictCache.from_spec(store.spec) is VerdictCache.from_spec(
            store.spec
        )
        warm_spec(None)  # cache-free sweeps pass None through harmlessly


# ---------------------------------------------------------------------------
# journal co-location and initializer plumbing
# ---------------------------------------------------------------------------


def _double(x):
    return x * 2


def _boom_initializer():
    raise RuntimeError("synthetic warm-up failure")


_CHAIN_CALLS = []


def _chain_a(tag):
    _CHAIN_CALLS.append(("a", tag))


def _chain_b(tag):
    _CHAIN_CALLS.append(("b", tag))


class TestPlumbing:
    def test_checkpoint_colocates_with_segment_store(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CHECKPOINT_DIR", raising=False)
        store = SegmentVerdictCache(tmp_path / "s")
        assert resolve_checkpoint(None, cache=store) == store.journal_directory
        assert resolve_checkpoint(False, cache=store) is None
        assert resolve_checkpoint(tmp_path / "x", cache=store) == tmp_path / "x"
        # The file backend has no journal_directory: behaviour unchanged.
        assert resolve_checkpoint(None, cache=VerdictCache(tmp_path / "f")) is None
        # An explicit "off" stays off; a configured directory wins.
        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", "off")
        assert resolve_checkpoint(None, cache=store) is None
        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path / "env"))
        assert resolve_checkpoint(None, cache=store) == tmp_path / "env"

    def test_chain_initializers_composes_in_order(self):
        _CHAIN_CALLS.clear()
        initializer, initargs = chain_initializers(
            (_chain_a, (1,)), None, (_chain_b, (2,))
        )
        initializer(*initargs)
        assert _CHAIN_CALLS == [("a", 1), ("b", 2)]
        assert chain_initializers() == (None, ())
        assert chain_initializers(None, (None, ())) == (None, ())
        single = chain_initializers((_chain_a, (9,)))
        assert single == (_chain_a, (9,))

    def test_failing_initializer_does_not_kill_workers(self):
        results = supervised_map(
            _double, list(range(8)), workers=2, initializer=_boom_initializer
        )
        assert results == [x * 2 for x in range(8)]


# ---------------------------------------------------------------------------
# satellite: quarantine hygiene in the file backend
# ---------------------------------------------------------------------------


class TestCorruptQuarantineHygiene:
    def test_stale_corrupt_swept_on_open(self, tmp_path):
        directory = tmp_path / "cache"
        sub = directory / "ab"
        sub.mkdir(parents=True)
        old = sub / ("a" * 64 + ".corrupt")
        fresh = sub / ("b" * 64 + ".corrupt")
        old.write_text("junk")
        fresh.write_text("junk")
        ancient = time.time() - cache_module.STALE_CORRUPT_SECONDS - 3600
        os.utime(old, (ancient, ancient))
        VerdictCache(directory)
        assert not old.exists()
        assert fresh.exists()  # under the TTL: kept for its post-mortem

    def test_corrupt_ttl_env_overrides_and_disables(self, tmp_path, monkeypatch):
        directory = tmp_path / "cache"
        sub = directory / "ab"
        sub.mkdir(parents=True)
        stale = sub / ("c" * 64 + ".corrupt")
        stale.write_text("junk")
        aged = time.time() - 60
        os.utime(stale, (aged, aged))
        monkeypatch.setenv(cache_module.CORRUPT_TTL_ENV, "off")
        VerdictCache(directory)
        assert stale.exists()  # disabled: nothing reclaimed
        monkeypatch.setenv(cache_module.CORRUPT_TTL_ENV, "1")
        cache_module._corrupt_swept_directories.discard(str(directory))
        VerdictCache(directory)
        assert not stale.exists()  # one-second TTL: reclaimed

    def test_corrupt_files_count_against_quota_and_evict_first(self, tmp_path):
        directory = tmp_path / "cache"
        cache = VerdictCache(directory, quota_bytes=10 ** 6)
        for i in range(5):
            cache.put(cache.key("entry", i), {"i": i})
        sub = directory / "zz"
        sub.mkdir(exist_ok=True)
        corrupt = sub / ("d" * 64 + ".corrupt")
        corrupt.write_bytes(b"x" * 2048)
        entry_bytes = sum(
            p.stat().st_size for p in directory.glob("*/*.json")
        )
        # Quota below entries+corrupt but comfortably above the entries:
        # the corrupt file alone must be evicted, newest mtime or not.
        cache.quota_bytes = entry_bytes + 1024
        cache._enforce_quota()
        assert not corrupt.exists()
        assert len(list(directory.glob("*/*.json"))) == 5


# ---------------------------------------------------------------------------
# the repro-cache CLI
# ---------------------------------------------------------------------------


class TestCli:
    def test_migrate_fsck_compact_stats_smoke(self, tmp_path, capsys):
        directory = tmp_path / "cache"
        legacy = VerdictCache(directory)
        for i in range(12):
            legacy.put(legacy.key("cli", i), {"i": i})
        assert cache_cli(["--dir", str(directory), "migrate"]) == 0
        out = capsys.readouterr().out
        assert "migrated 12 entries" in out
        assert "read-back parity: 12/12" in out
        assert cache_cli(["--dir", str(directory), "stats"]) == 0
        out = capsys.readouterr().out
        assert "backend: segments" in out and "keys: 12" in out
        assert cache_cli(["--dir", str(directory), "compact"]) == 0
        assert cache_cli(["--dir", str(directory), "fsck"]) == 0

    def test_fsck_exit_codes_and_repair(self, tmp_path, capsys):
        directory = tmp_path / "cache"
        store = SegmentVerdictCache(directory)
        for i in range(10):
            store.put(f"k{i}", i)
        segment = sorted(directory.glob("seg-*.log"))[-1]
        buf = bytearray(segment.read_bytes())
        buf[HEADER_SIZE + 1] ^= 0xFF
        segment.write_bytes(bytes(buf))
        assert cache_cli(["--dir", str(directory), "fsck"]) == 1
        assert "1 corrupt region(s)" in capsys.readouterr().out
        assert cache_cli(["--dir", str(directory), "fsck", "--repair"]) == 0
        assert "repaired 1 segment(s)" in capsys.readouterr().out
        assert cache_cli(["--dir", str(directory), "fsck"]) == 0

    def test_migrate_parity_failure_keeps_legacy(self, tmp_path, capsys, monkeypatch):
        directory = tmp_path / "cache"
        legacy = VerdictCache(directory)
        key = legacy.key("cli", 1)
        legacy.put(key, {"value": 1})
        # Sabotage the read-back so the parity checker must fail closed.
        monkeypatch.setattr(
            store_module.SegmentVerdictCache, "get", lambda self, key: MISS
        )
        assert cache_cli(["--dir", str(directory), "migrate"]) == 1
        assert "PARITY FAILURE" in capsys.readouterr().out
        monkeypatch.undo()
        assert list(directory.glob("*/*.json"))  # legacy untouched
        assert VerdictCache(directory).get(key) == {"value": 1}

    def test_dir_required(self, tmp_path, monkeypatch, capsys):
        monkeypatch.delenv(cache_module.CACHE_ENV, raising=False)
        with pytest.raises(SystemExit) as excinfo:
            cache_cli(["stats"])
        assert excinfo.value.code == 2
        capsys.readouterr()

    def test_stats_json(self, tmp_path, capsys):
        directory = tmp_path / "cache"
        store = SegmentVerdictCache(directory)
        for i in range(5):
            store.put(f"k{i}", i)
        assert cache_cli(["--dir", str(directory), "stats", "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["backend"] == "segments"
        assert stats["keys"] == 5
        assert stats["bytes"] > 0

    def test_fsck_json_clean_and_corrupt(self, tmp_path, capsys):
        directory = tmp_path / "cache"
        store = SegmentVerdictCache(directory)
        for i in range(10):
            store.put(f"k{i}", i)
        assert cache_cli(["--dir", str(directory), "fsck", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["clean"] is True
        assert report["corrupt_regions"] == 0
        assert report["repair"] is False
        segment = sorted(directory.glob("seg-*.log"))[-1]
        buf = bytearray(segment.read_bytes())
        buf[HEADER_SIZE + 1] ^= 0xFF
        segment.write_bytes(bytes(buf))
        assert cache_cli(["--dir", str(directory), "fsck", "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["clean"] is False
        assert report["corrupt_regions"] == 1
        assert (
            cache_cli(["--dir", str(directory), "fsck", "--json", "--repair"])
            == 0
        )
        report = json.loads(capsys.readouterr().out)
        assert report["repair"] is True
        assert report["repaired_segments"] == 1


# ---------------------------------------------------------------------------
# chaos: true SIGKILL drills
# ---------------------------------------------------------------------------


@pytest.mark.chaos
class TestChaosDrills:
    def test_sigkill_mid_write_loses_only_unreported_keys(self, tmp_path):
        """Kill a writer dead mid-stream: every key it *reported* written
        (put returned before the report) must survive the kill."""
        directory = tmp_path / "s"
        script = f"""
        from repro.dispatch import SegmentVerdictCache
        store = SegmentVerdictCache({str(directory)!r}, segment_bytes=2048)
        for i in range(100000):
            store.put(f"k{{i:06d}}", {{"i": i}})
            print(i, flush=True)
        """
        writer = _run_script(script, stdout=subprocess.PIPE, text=True)
        reported = []
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline and len(reported) < 500:
            line = writer.stdout.readline()
            if not line:
                break
            reported.append(int(line))
        writer.send_signal(signal.SIGKILL)
        writer.wait()
        writer.stdout.close()
        assert reported, "writer never reported a completed put"
        survivor = SegmentVerdictCache(directory, segment_bytes=2048)
        for i in reported:
            assert survivor.get(f"k{i:06d}") == {"i": i}
        # The store stays writable (any torn tail is repaired on append).
        survivor.put("post-kill", True)
        assert SegmentVerdictCache(directory).get("post-kill") is True

    def test_sigkill_during_repeated_compaction_loses_nothing(self, tmp_path):
        directory = tmp_path / "s"
        _store, expected = _populated_store(directory, keys=150)
        script = f"""
        from repro.dispatch import SegmentVerdictCache
        store = SegmentVerdictCache({str(directory)!r}, segment_bytes=2048)
        for round_number in range(1000):
            for i in range(150):
                store.put(f"extra-{{round_number}}-{{i}}", i)
            store.compact()
            print(round_number, flush=True)
        """
        compactor = _run_script(script, stdout=subprocess.PIPE, text=True)
        compactor.stdout.readline()  # at least one full compaction cycle
        time.sleep(0.2)  # land the kill inside a later cycle
        compactor.send_signal(signal.SIGKILL)
        compactor.wait()
        compactor.stdout.close()
        survivor = SegmentVerdictCache(directory, segment_bytes=2048)
        assert {k: survivor.get(k) for k in expected} == expected
        assert not survivor.compact()["skipped"]
        reopened = SegmentVerdictCache(directory, segment_bytes=2048)
        assert {k: reopened.get(k) for k in expected} == expected
