"""Parity of the shape-quotient evaluation layer against the per-execution path.

The shape-quotient layer shares derived relations (``sw``/``hb``/
``init-overlap``) and the tot-independent validity verdict across all
ground executions of one pre-execution with the same event-level rf
signature, and the witness search runs as a reachable-set bitmask DP
instead of a pure backtracker.  None of that may change a single verdict:

* every shared ``sw``/``hb`` must equal the relation recomputed from
  scratch on a fresh, cache-free copy of the execution;
* the DP witness search must return *bit-identical* results (not just
  agree on existence) with the reference backtracking implementation —
  the one the seed/PR-1 code used — on the full litmus catalogue's ground
  executions and on a seeded random sample of ~1k hb/triple instances.

The reference implementations below are deliberately independent of the
shared caches: they rebuild the execution without a cache and re-derive
everything per call.
"""

import random

import pytest

from repro.core.execution import CandidateExecution
from repro.core.js_model import (
    ALL_MODELS,
    WitnessVerdict,
    _search_witness,
    _sc_atomics_forbidden_triples,
    exists_valid_total_order,
    happens_before_consistency_2,
    happens_before_consistency_3,
    is_valid,
    tear_free_reads,
    witness_verdict,
)
from repro.core.relations import Relation
from repro.lang.enumeration import ground_executions
from repro.lang.wait_notify import wait_notify_ground_executions
from repro.litmus.catalogue import all_tests
from repro.search.shapes import SearchBounds, generate_programs


# ---------------------------------------------------------------------------
# reference (per-execution, cache-free) implementations
# ---------------------------------------------------------------------------


def fresh_copy(execution):
    """The same candidate execution with an empty derived-relation cache."""
    return CandidateExecution(
        events=execution.events,
        sb=execution.sb,
        asw=execution.asw,
        rbf=execution.rbf,
        tot=execution.tot,
    )


def ref_search_witness(eids, hb, triples):
    """The PR-1 backtracker: prune at *reader* placement via positions."""
    n = len(eids)
    idx = {eid: i for i, eid in enumerate(eids)}
    pred_mask = [0] * n
    for eid in eids:
        mask = 0
        for p in hb.predecessors(eid):
            bit = idx.get(p)
            if bit is not None:
                mask |= 1 << bit
        pred_mask[idx[eid]] = mask
    by_reader = [()] * n
    for r_eid, pairs in triples.items():
        by_reader[idx[r_eid]] = tuple((idx[w], idx[c]) for (w, c) in pairs)

    pos = [-1] * n
    order = []
    full = (1 << n) - 1

    def backtrack(placed_mask):
        if placed_mask == full:
            return True
        for i in range(n):
            bit = 1 << i
            if placed_mask & bit or pred_mask[i] & ~placed_mask:
                continue
            violated = False
            for (w, c) in by_reader[i]:
                pw, pc = pos[w], pos[c]
                if pw >= 0 and pc >= 0 and pw < pc:
                    violated = True
                    break
            if violated:
                continue
            pos[i] = len(order)
            order.append(i)
            if backtrack(placed_mask | bit):
                return True
            order.pop()
            pos[i] = -1
        return False

    if backtrack(0):
        return tuple(eids[i] for i in order)
    return None


def ref_exists_valid_total_order(execution, model):
    """The pre-quotient witness search: fresh caches, reference backtracker."""
    fresh = fresh_copy(execution)
    if not fresh.is_well_formed(require_tot=False):
        return None
    hb = model.happens_before(fresh)
    sw = model.synchronizes_with(fresh)
    if (
        not hb.is_acyclic()
        or not happens_before_consistency_2(fresh, hb)
        or not happens_before_consistency_3(fresh, hb)
        or not tear_free_reads(fresh, strong=model.strong_tearfree)
    ):
        return None
    triples = _sc_atomics_forbidden_triples(fresh, model.sc_atomics, hb, sw)
    return ref_search_witness(sorted(fresh.eids), hb, triples)


# ---------------------------------------------------------------------------
# catalogue-wide parity
# ---------------------------------------------------------------------------


def _catalogue_ground_executions(test):
    if test.program.uses_wait_notify():
        corrected = test.corrected_wait_notify
        for flag in ([corrected] if corrected is not None else [True, False]):
            yield from wait_notify_ground_executions(test.program, corrected=flag)
    else:
        yield from ground_executions(test.program)


def _assert_execution_parity(execution, model):
    fresh = fresh_copy(execution)
    # Shared sw/hb vs from-scratch recomputation.
    assert (
        model.synchronizes_with(execution).pairs
        == model.synchronizes_with(fresh).pairs
    )
    assert (
        model.happens_before(execution).pairs == model.happens_before(fresh).pairs
    )
    assert execution.init_overlap().pairs == fresh.init_overlap().pairs
    # Bitmask-DP witness search (over shared verdicts) vs the reference
    # backtracker (over fresh ones): bit-identical witnesses.
    assert exists_valid_total_order(execution, model) == ref_exists_valid_total_order(
        execution, model
    )


@pytest.mark.parametrize("test", all_tests(), ids=lambda t: t.name)
def test_catalogue_shape_parity(test):
    models_used = {e.model for e in test.expectations}
    for execution_holder in _catalogue_ground_executions(test):
        execution = execution_holder.execution
        for model in ALL_MODELS:
            _assert_execution_parity(execution, model)
    assert models_used  # every catalogue test pins at least one expectation


def test_generated_program_sample_parity():
    """~1k ground executions from the bounded shape enumeration, all models."""
    bounds = SearchBounds(
        threads=2,
        max_accesses_per_thread=2,
        max_total_accesses=4,
        locations=1,
        values=(1, 2),
        guarded_observer=True,
    )
    checked = 0
    for program in generate_programs(bounds):
        for ground in ground_executions(program):
            for model in ALL_MODELS:
                _assert_execution_parity(ground.execution, model)
            checked += 1
            if checked >= 250:  # 250 executions x 4 models = 1k comparisons
                return
    raise AssertionError("sample bound produced too few executions")


def test_witness_verdict_distinguishes_rbf_patterns():
    """Verdicts are keyed by the full rbf even on a shared (per-rf) cache.

    Two executions may share an rf signature yet differ in HB-Consistency
    (3) through their byte-wise rbf; the shared cache must never leak one's
    verdict to the other.  Construct the sharing directly: same cache dict,
    different rbf.
    """
    from repro.core.events import Event, EventSet, make_init_event, SEQCST

    init = make_init_event("b", 2, eid=0)
    w1 = Event(eid=1, tid=0, ord=SEQCST, block="b", index=0, writes=(1, 1))
    r1 = Event(eid=2, tid=1, ord=SEQCST, block="b", index=0, reads=(1, 1))
    events = EventSet((init, w1, r1))
    shared_cache = {}
    a = CandidateExecution(
        events=events,
        sb=Relation(),
        asw=Relation(),
        rbf=frozenset({(0, 1, 2), (1, 1, 2)}),
        _cache=shared_cache,
    )
    b = CandidateExecution(
        events=events,
        sb=Relation(),
        asw=Relation(),
        rbf=frozenset({(0, 1, 2)}),
        _cache=shared_cache,
    )
    for model in ALL_MODELS:
        va = witness_verdict(a, model)
        vb = witness_verdict(b, model)
        assert va is witness_verdict(a, model)  # cached
        assert vb is witness_verdict(b, model)
        assert va is not vb  # rbf-keyed entries never collide


# ---------------------------------------------------------------------------
# randomized DP-vs-backtracker equivalence (~1k instances)
# ---------------------------------------------------------------------------


class _StubExecution:
    """The minimal surface ``_search_witness`` touches."""

    def __init__(self, eids):
        self.eids = frozenset(eids)


def _random_instance(rng):
    n = rng.randint(2, 9)
    eids = list(range(n))
    ordering = eids[:]
    rng.shuffle(ordering)
    # hb: random forward edges of a random permutation (hence acyclic).
    pairs = set()
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < rng.choice([0.1, 0.3, 0.5]):
                pairs.add((ordering[i], ordering[j]))
    hb = Relation(pairs)
    # forbidden triples: random (writer, intervener) pairs per reader.
    triples = {}
    if n >= 3:
        for _ in range(rng.randint(0, 2 * n)):
            r, w, c = rng.sample(eids, 3)
            triples.setdefault(r, []).append((w, c))
    triples = {r: tuple(ps) for r, ps in triples.items()}
    return eids, hb, triples


@pytest.mark.parametrize("chunk", range(4))
def test_dp_matches_backtracker_on_random_instances(chunk):
    rng = random.Random(0xD0 + chunk)
    for _ in range(250):
        eids, hb, triples = _random_instance(rng)
        verdict = WitnessVerdict(ok=True, hb=hb, triples=triples)
        got = _search_witness(_StubExecution(eids), verdict)
        want = ref_search_witness(sorted(eids), hb, triples)
        assert got == want
        if want is not None:
            # The witness really is a linear extension realising no triple.
            index = {eid: i for i, eid in enumerate(want)}
            assert all(index[a] < index[b] for (a, b) in hb)
            for r, ps in triples.items():
                for (w, c) in ps:
                    assert not (index[w] < index[c] < index[r])


# ---------------------------------------------------------------------------
# validity agreement on complete witnesses
# ---------------------------------------------------------------------------


# ---------------------------------------------------------------------------
# ARM shape-quotient parity: classed grounding vs the per-execution path
# ---------------------------------------------------------------------------
#
# The ARM grounding layer quotients assignments by (value profile,
# event-level rf signature), shares ob_fixed/events/outcome/cache per
# class, decides the local axioms through per-(group, projection) memos
# and the external axiom on shared scaffolding.  None of that may change a
# single allowed execution or compilation verdict: the references below
# strip every shared cache and re-run the naive per-execution pipeline.


def fresh_arm_copy(execution):
    """The same ARM execution with an empty derived-relation cache."""
    from dataclasses import replace

    return replace(execution, _cache={})


def _allowed_signature(ground):
    return (
        ground.execution.rbf,
        ground.execution.co_by_byte,
        tuple(sorted(ground.outcome.items())),
    )


def _assert_arm_allowed_parity(arm_program):
    """Classed allowed-execution stream == naive validity filter, in order."""
    from repro.armv8.axiomatic import (
        arm_allowed_execution_classes,
        arm_allowed_executions,
        arm_ground_executions,
        arm_is_valid,
    )

    classed = [_allowed_signature(g) for g in arm_allowed_executions(arm_program)]
    naive = [
        _allowed_signature(g)
        for g in arm_ground_executions(arm_program)
        if arm_is_valid(fresh_arm_copy(g.execution))
    ]
    assert classed == naive
    # The classed API flattens to exactly the same stream, and every
    # variant of a class shares the class's events and rbf.
    flattened = []
    for allowed_class in arm_allowed_execution_classes(arm_program):
        for execution in allowed_class.executions:
            assert execution.events is allowed_class.prototype.events
            assert execution.rbf is allowed_class.prototype.rbf
            assert arm_is_valid(fresh_arm_copy(execution))
            flattened.append(
                (
                    execution.rbf,
                    execution.co_by_byte,
                    tuple(sorted(allowed_class.outcome.items())),
                )
            )
    assert flattened == classed
    return len(classed)


def _naive_compilation_counts(program, model):
    """check_program_compilation re-run with no classes and no shared caches."""
    from repro.armv8.axiomatic import arm_ground_executions, arm_is_valid
    from repro.compile.scheme import compile_program
    from repro.compile.totorder import construct_total_order
    from repro.compile.translation import translate_arm_execution

    compiled = compile_program(program)
    counts = {
        "arm_executions": 0,
        "valid_with_construction": 0,
        "valid_with_search": 0,
        "construction_failures": 0,
        "counterexamples": 0,
    }
    for ground in arm_ground_executions(compiled.arm):
        arm_execution = fresh_arm_copy(ground.execution)
        if not arm_is_valid(arm_execution):
            continue
        counts["arm_executions"] += 1
        try:
            translated = translate_arm_execution(compiled, arm_execution)
        except ValueError:
            continue
        js = fresh_copy(translated.execution)
        tot = construct_total_order(translated, arm_execution)
        if tot is not None and is_valid(js.with_witness(tot=tot), model):
            counts["valid_with_construction"] += 1
            continue
        counts["construction_failures"] += 1
        if ref_exists_valid_total_order(js, model) is not None:
            counts["valid_with_search"] += 1
            continue
        counts["counterexamples"] += 1
    return counts


def _assert_compilation_parity(program, model):
    from repro.compile.correctness import check_program_compilation

    result = check_program_compilation(
        program, model=model, max_counterexamples=10 ** 9
    )
    naive = _naive_compilation_counts(program, model)
    assert naive == {
        "arm_executions": result.arm_executions,
        "valid_with_construction": result.valid_with_construction,
        "valid_with_search": result.valid_with_search,
        "construction_failures": result.construction_failures,
        "counterexamples": len(result.counterexamples),
    }
    return result


@pytest.mark.parametrize("test", all_tests(), ids=lambda t: t.name)
def test_catalogue_arm_allowed_execution_parity(test):
    if test.program.uses_wait_notify():
        pytest.skip("wait/notify programs are not compiled to ARM")
    from repro.compile.scheme import compile_program

    _assert_arm_allowed_parity(compile_program(test.program).arm)


def test_catalogue_arm_compilation_verdict_parity():
    """Classed compilation verdicts == naive per-execution verdicts.

    Covers both models — including the ORIGINAL model on the fig6 shape,
    where genuine counter-examples exist, so the counter-example path is
    exercised too.
    """
    from repro.core.js_model import FINAL_MODEL, ORIGINAL_MODEL
    from repro.litmus.catalogue import fig6_armv8_violation

    names = ["sb-sc", "mp-un-sc", "corr-un", "mixed-size-overlap", "lb-sc"]
    by_name_map = {t.name: t for t in all_tests()}
    for name in names:
        result = _assert_compilation_parity(by_name_map[name].program, FINAL_MODEL)
        assert result.correct
    fig6 = fig6_armv8_violation()
    assert not _assert_compilation_parity(fig6.program, ORIGINAL_MODEL).correct
    assert _assert_compilation_parity(fig6.program, FINAL_MODEL).correct


def test_generated_arm_sample_parity():
    """~1k ARM executions from the bounded shape enumeration, classed vs fresh."""
    from repro.compile.scheme import compile_program

    bounds = SearchBounds(
        threads=2,
        max_accesses_per_thread=2,
        max_total_accesses=3,
        locations=2,
        values=(1, 2),
        guarded_observer=False,
    )
    checked = 0
    for program in generate_programs(bounds):
        checked += _assert_arm_allowed_parity(compile_program(program).arm)
        if checked >= 1000:
            break
    assert checked >= 1000


def test_found_witnesses_validate_under_is_valid():
    """Every witness the shared path returns passes the full rule pipeline."""
    bounds = SearchBounds(
        threads=2,
        max_accesses_per_thread=2,
        max_total_accesses=3,
        locations=1,
        values=(1, 2),
        guarded_observer=False,
    )
    checked = 0
    for program in generate_programs(bounds):
        for ground in ground_executions(program):
            for model in ALL_MODELS:
                tot = exists_valid_total_order(ground.execution, model)
                if tot is not None:
                    witnessed = ground.execution.with_witness(tot=tot)
                    assert is_valid(witnessed, model)
                    checked += 1
        if checked >= 400:
            break
    assert checked >= 400
