"""Parity and accounting pins for the fused-pruning layer (PR 5).

Three changes push pruning *into* the shared assignment enumerator, and all
three must be invisible at the verdict level:

* the ARM per-byte coherence masks now run inside the backtracker
  (``_fused_group_hooks``): the fused survivor stream must be the exact
  subsequence of the unfused member stream that the post-enumeration filter
  (``_locally_consistent_orders``) used to keep, same order, same
  surviving-order lists;
* the JavaScript grounding collapses verdict-equivalent ``reads-byte-from``
  assignments per (value profile, interchangeable-byte-class writer sets)
  with explicit ``multiplicity`` — the collapsed stream must be the
  first-occurrence subsequence of the uncollapsed one, multiplicities must
  account for every member, and every outcome-level verdict must be
  bit-identical with the collapse on or off;
* the witness search's dead-prefix memo moved onto the shared shape
  verdict — searches must return the same witnesses while sharing state.
"""

import os

import pytest

from repro.armv8.axiomatic import (
    _arm_groundings,
    _locally_consistent_orders,
)
from repro.compile.scheme import compile_program
from repro.core.execution import CandidateExecution
from repro.core.events import Event, EventSet, make_init_event, SEQCST
from repro.core.js_model import (
    ALL_MODELS,
    FINAL_MODEL,
    ORIGINAL_MODEL,
    exists_valid_total_order,
    witness_verdict,
)
from repro.core.relations import Relation
from repro.lang.enumeration import allowed_outcomes, ground_executions
from repro.litmus.catalogue import (
    all_tests,
    fig1_message_passing,
    fig6_armv8_violation,
    store_buffering,
    rmw_exchange_mutex,
)
from repro.search import SearchBounds, generate_programs, search_sc_drf_violation


# ---------------------------------------------------------------------------
# fused ARM backtracker: classed-vs-fresh stream parity
# ---------------------------------------------------------------------------


def _fused_stream(arm_program):
    return [
        (g.rbf, g._filtered)
        for g in _arm_groundings(arm_program, True, locally_consistent=True)
    ]


def _post_filter_stream(arm_program):
    """The pre-fusion pipeline: enumerate everything, filter afterwards."""
    survivors = []
    for g in _arm_groundings(arm_program, True):
        filtered = _locally_consistent_orders(g)
        if filtered is not None:
            survivors.append((g.rbf, filtered))
    return survivors


@pytest.mark.parametrize(
    "test", [t for t in all_tests() if not t.program.uses_wait_notify()],
    ids=lambda t: t.name,
)
def test_fused_arm_stream_matches_post_filter_catalogue(test):
    """Catalogue-wide: fused pruning keeps exactly the post-filter survivors."""
    arm = compile_program(test.program).arm
    assert _fused_stream(arm) == _post_filter_stream(arm)


def test_fused_arm_stream_matches_post_filter_generated():
    """Generated-programs slice of the same guarantee."""
    bounds = SearchBounds(
        threads=2,
        max_accesses_per_thread=2,
        max_total_accesses=4,
        locations=1,
        values=(1, 2),
        guarded_observer=False,
        max_programs=120,
    )
    checked = 0
    for program in generate_programs(bounds):
        arm = compile_program(program).arm
        assert _fused_stream(arm) == _post_filter_stream(arm), program.name
        checked += 1
    assert checked == 120


# ---------------------------------------------------------------------------
# JS value-profile collapse: multiplicity accounting
# ---------------------------------------------------------------------------

# (program factory, uncollapsed members, collapsed classes) — golden, so a
# change that silently widens the stream or degrades the collapse shows up.
COLLAPSE_FIXTURES = [
    (fig1_message_passing, 136, 10),
    (fig6_armv8_violation, 6561, 144),
    (lambda: store_buffering(True), 256, 16),
    (rmw_exchange_mutex, 256, 16),
]


@pytest.mark.parametrize(
    "make_test,members,classes",
    COLLAPSE_FIXTURES,
    ids=lambda v: getattr(v, "__name__", str(v)),
)
def test_collapse_class_counts_are_pinned(make_test, members, classes):
    program = make_test().program
    plain = list(ground_executions(program))
    collapsed = list(ground_executions(program, collapse_value_profiles=True))
    assert len(plain) == members
    assert len(collapsed) == classes
    assert sum(g.multiplicity for g in collapsed) == members


def _accounting_parity(program):
    """The collapse invariants for one program.

    * the collapsed stream is the first-occurrence subsequence of the
      uncollapsed stream (compared by rbf — the bijective member witness);
    * total multiplicity accounts for every uncollapsed member;
    * per-outcome multiplicity equals the uncollapsed per-outcome count.
    """
    plain = list(ground_executions(program))
    collapsed = list(ground_executions(program, collapse_value_profiles=True))
    assert sum(g.multiplicity for g in collapsed) == len(plain)
    collapsed_rbfs = [g.execution.rbf for g in collapsed]
    plain_rbfs = [g.execution.rbf for g in plain]
    # First occurrences appear in stream order and come from the plain
    # stream (every representative IS an uncollapsed member): subsequence
    # check over the rbf streams.
    position = 0
    for rbf in collapsed_rbfs:
        while position < len(plain_rbfs) and plain_rbfs[position] != rbf:
            position += 1
        assert position < len(plain_rbfs), "representative missing from plain stream"
        position += 1
    # Outcome-level accounting: multiplicities partition the member stream.
    def outcome_counts(grounds, weighted):
        counts = {}
        for g in grounds:
            key = tuple(sorted(g.outcome.items()))
            counts[key] = counts.get(key, 0) + (g.multiplicity if weighted else 1)
        return counts

    assert outcome_counts(collapsed, True) == outcome_counts(plain, False)


@pytest.mark.parametrize(
    "test", [t for t in all_tests() if not t.program.uses_wait_notify()],
    ids=lambda t: t.name,
)
def test_collapse_accounting_catalogue(test):
    _accounting_parity(test.program)


@pytest.mark.parametrize("model", [FINAL_MODEL, ORIGINAL_MODEL], ids=lambda m: m.name)
def test_collapse_verdict_parity_catalogue(model):
    for test in all_tests():
        if test.program.uses_wait_notify():
            continue
        with_collapse = allowed_outcomes(
            test.program, model, collapse_value_profiles=True
        )
        without = allowed_outcomes(
            test.program, model, collapse_value_profiles=False
        )
        assert with_collapse == without, test.name


def test_collapse_verdict_parity_random_programs():
    """~1k generated programs: outcome sets bit-identical with the collapse.

    This is the §5.4 sweep's enumeration (the guarded-observer bound), so
    passing here means the sweep's per-program verdicts cannot move.
    """
    bounds = SearchBounds(
        threads=2,
        max_accesses_per_thread=2,
        max_total_accesses=4,
        locations=1,
        values=(1, 2),
        guarded_observer=True,
    )
    checked = 0
    for index, program in enumerate(generate_programs(bounds)):
        with_collapse = allowed_outcomes(
            program, FINAL_MODEL, collapse_value_profiles=True
        )
        without = allowed_outcomes(
            program, FINAL_MODEL, collapse_value_profiles=False
        )
        assert with_collapse == without, program.name
        if index % 10 == 0:
            # Full multiplicity accounting on a stride (it re-enumerates the
            # program twice more; the catalogue suite covers it densely).
            _accounting_parity(program)
        checked += 1
        if checked >= 1000:
            break
    assert checked >= 1000


# ---------------------------------------------------------------------------
# shared dead-prefix memo
# ---------------------------------------------------------------------------


def test_search_dead_memo_is_shared_per_shape():
    """rbf variants of one shape share one dead-prefix memo and one verdict hb.

    Two equal-valued writers let one 2-byte read justify its bytes either
    way round: both executions are well-formed, share the event-level rf
    signature {(1,3),(2,3)}, and differ only in the byte-wise ``rbf``.
    """
    init = make_init_event("b", 2, eid=0)
    w1 = Event(eid=1, tid=0, ord=SEQCST, block="b", index=0, writes=(1, 1))
    w2 = Event(eid=2, tid=0, ord=SEQCST, block="b", index=0, writes=(1, 1))
    r1 = Event(eid=3, tid=1, ord=SEQCST, block="b", index=0, reads=(1, 1))
    events = EventSet((init, w1, w2, r1))
    sb = Relation([(1, 2)])
    shared_cache = {}
    a = CandidateExecution(
        events=events,
        sb=sb,
        rbf=frozenset({(0, 1, 3), (1, 2, 3)}),
        _cache=shared_cache,
    )
    b = CandidateExecution(
        events=events,
        sb=sb,
        rbf=frozenset({(0, 2, 3), (1, 1, 3)}),
        _cache=shared_cache,
    )
    tot_a = exists_valid_total_order(a, FINAL_MODEL)
    tot_b = exists_valid_total_order(b, FINAL_MODEL)
    va, vb = witness_verdict(a, FINAL_MODEL), witness_verdict(b, FINAL_MODEL)
    assert va is not vb  # still rbf-keyed entries
    assert va.search_dead is vb.search_dead  # ...sharing one search memo
    # Sharing must not change results: fresh, unshared copies agree.
    fresh_a = CandidateExecution(events=events, sb=sb, rbf=a.rbf)
    fresh_b = CandidateExecution(events=events, sb=sb, rbf=b.rbf)
    assert exists_valid_total_order(fresh_a, FINAL_MODEL) == tot_a
    assert exists_valid_total_order(fresh_b, FINAL_MODEL) == tot_b


def test_search_dead_memo_reused_across_repeated_queries():
    """A second search of one execution starts from the memoised dead sets."""
    program = fig6_armv8_violation().program
    for ground in ground_executions(program):
        verdict = witness_verdict(ground.execution, ORIGINAL_MODEL)
        if not verdict.ok:
            continue
        first = exists_valid_total_order(ground.execution, ORIGINAL_MODEL)
        if first is not None or verdict.search_dead is None:
            continue
        # A failed search marked prefixes dead on the shared memo...
        assert verdict.search_dead
        recorded = set(verdict.search_dead)
        # ...and a repeat query reuses (and does not corrupt) it.
        assert exists_valid_total_order(ground.execution, ORIGINAL_MODEL) is None
        assert verdict.search_dead == recorded
        return
    pytest.skip("no witness-free execution with ok tot-independent verdict")


# ---------------------------------------------------------------------------
# multi-core sharded parity smoke (ROADMAP re-measure note)
# ---------------------------------------------------------------------------


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="multi-core workers=N parity smoke needs at least 2 cores",
)
def test_multicore_sweep_parity_smoke():
    """workers=2 on a real multi-core host: bit-identical sweep report."""
    bounds = SearchBounds(
        threads=2,
        max_accesses_per_thread=2,
        max_total_accesses=4,
        locations=1,
        values=(1, 2),
        guarded_observer=True,
        max_programs=160,
    )
    serial = search_sc_drf_violation(bounds, ORIGINAL_MODEL, workers=1, cache=False)
    sharded = search_sc_drf_violation(bounds, ORIGINAL_MODEL, workers=2, cache=False)
    assert sharded.programs_examined == serial.programs_examined
    assert sharded.found == serial.found
    if serial.found:
        assert (
            sharded.counterexample.program.name
            == serial.counterexample.program.name
        )
        assert sharded.counterexample.outcome == serial.counterexample.outcome
