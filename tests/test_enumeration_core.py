"""Regression: both grounding layers run on the one shared enumeration core.

PR 3 extracted the pruned-backtracking assignment enumeration that
``lang.enumeration.ground_candidates`` and ``armv8.axiomatic._arm_assignments``
used to implement separately into :mod:`repro.core.groundcore`.  These tests
pin the anti-drift guarantees:

* both layers *route through* the shared core (monkeypatching it is
  observed by both);
* the two layers agree on candidate counts for a fixture set where the
  compilation scheme maps reads/writes one-to-one — a change to one layer's
  pruning that does not reach the other breaks the agreement;
* the known, *intended* divergence (ARM exclusive pairs enumerate
  store-half self-read assignments that only the JS translation rejects)
  is pinned as golden counts so it cannot silently widen.
"""

import pytest

from repro.armv8.axiomatic import _arm_assignments, arm_pre_executions
from repro.compile.scheme import compile_program
from repro.lang.enumeration import ground_executions
from repro.litmus.catalogue import (
    fig1_message_passing,
    fig6_armv8_violation,
    fig8_sc_drf_violation,
    load_buffering,
    message_passing,
    rmw_exchange_mutex,
    store_buffering,
)

# Fixtures whose accesses the compilation scheme maps 1:1 (no exclusive
# pairs), so the two layers must enumerate *the same number* of feasible
# assignments for source and compiled program alike.
AGREEING_FIXTURES = [
    (fig1_message_passing, 136),
    (fig8_sc_drf_violation, 2241),
    (lambda: store_buffering(True), 256),
    (lambda: store_buffering(False), 256),
    (lambda: load_buffering(True), 256),
    (lambda: message_passing(True, False), 256),
    (fig6_armv8_violation, 6561),
]


def _js_count(program):
    return sum(1 for _ in ground_executions(program))


def _arm_count(arm_program):
    return sum(
        1
        for pre in arm_pre_executions(arm_program)
        for _ in _arm_assignments(pre)
    )


@pytest.mark.parametrize(
    "make_test,expected", AGREEING_FIXTURES, ids=lambda v: getattr(v, "__name__", str(v))
)
def test_layers_agree_on_candidate_counts(make_test, expected):
    program = make_test().program
    js = _js_count(program)
    arm = _arm_count(compile_program(program).arm)
    assert js == arm == expected


def test_rmw_divergence_is_pinned():
    """Exclusive pairs: the ARM layer enumerates store-half self-reads.

    The JS RMW is a single event (its read can never be justified by its
    own write), while the compiled ``ldaxr``/``stlxr`` pair lets the load
    half read from its own store half at the assignment level; the
    translation rejects those later.  Pin both counts so a change to either
    layer's pruning shows up here.
    """
    program = rmw_exchange_mutex().program
    assert _js_count(program) == 256
    assert _arm_count(compile_program(program).arm) == 6561


# ---------------------------------------------------------------------------
# the signature-class quotient of the ARM grounding layer
# ---------------------------------------------------------------------------

# (members, classes) of the classed ARM grounding enumeration, golden: a
# pruning change that silently widens the member stream or degrades the
# quotient (classes ≈ members would mean the scaffolding is rebuilt per
# assignment again) shows up here.
CLASSED_FIXTURES = [
    (fig1_message_passing, 136, 10),
    (fig6_armv8_violation, 6561, 144),
    (lambda: store_buffering(True), 256, 16),
    (rmw_exchange_mutex, 6561, 144),
]


@pytest.mark.parametrize(
    "make_test,members,classes",
    CLASSED_FIXTURES,
    ids=lambda v: getattr(v, "__name__", str(v)),
)
def test_arm_groundings_are_classed(make_test, members, classes):
    """One grounding per assignment, class state interned per signature."""
    from repro.armv8.axiomatic import _arm_groundings

    arm = compile_program(make_test().program).arm
    groundings = list(_arm_groundings(arm, True))
    assert len(groundings) == members
    by_class: dict = {}
    for grounding in groundings:
        by_class.setdefault(id(grounding.cls), []).append(grounding)
    assert len(by_class) == classes
    for group in by_class.values():
        first = group[0]
        for member in group:
            # Class state is genuinely shared (identity, not equality)...
            assert member.cls is first.cls
            assert member.outcome is first.outcome
            assert member.cls.ob_fixed is first.cls.ob_fixed
            assert member.cls.events is first.cls.events
            # ...and each member still owns its byte-level witness, which
            # projects to exactly the class's event-level rf signature.
            assert (
                frozenset((w, r) for (_k, w, r) in member.rbf)
                == member.cls.rf_pairs
            )
        assert len({member.rbf for member in group}) == len(group)


def test_arm_groundings_stream_matches_assignments():
    """The classed stream is the assignment stream: same order, same rbf."""
    from repro.armv8.axiomatic import _arm_groundings

    arm = compile_program(fig1_message_passing().program).arm
    expected = [
        frozenset((k, w, r) for ((k, r), w) in assignment.items())
        for pre in arm_pre_executions(arm)
        for (assignment, _reads, _outs) in _arm_assignments(pre)
    ]
    got = [grounding.rbf for grounding in _arm_groundings(arm, True)]
    assert got == expected


def test_both_layers_quotient_through_shared_interner():
    """Both layers' class grouping records into groundcore.SignatureInterner.

    The interner's members/classes counters are the observable contract:
    one member per assignment, classes strictly fewer (the quotient
    collapses), on BOTH layers.
    """
    from repro.core.groundcore import SignatureInterner

    from repro.armv8.axiomatic import _arm_groundings, arm_pre_executions
    from repro.lang.enumeration import pre_executions, ground_candidates

    program = store_buffering(True).program
    js_pres = list(pre_executions(program))
    assert sum(len(list(ground_candidates(p))) for p in js_pres) == 256
    js_interners = [p._lazy("_shape_cache_memo", SignatureInterner) for p in js_pres]
    assert all(isinstance(i, SignatureInterner) for i in js_interners)
    assert sum(i.members for i in js_interners) == 256
    assert 0 < sum(i.classes for i in js_interners) < 256

    arm = compile_program(program).arm
    groundings = list(_arm_groundings(arm, True))
    assert len(groundings) == 256
    arm_interners = {
        id(g.pre): g.pre._lazy("_grounding_classes", SignatureInterner)
        for g in groundings
    }
    assert all(isinstance(i, SignatureInterner) for i in arm_interners.values())
    assert sum(i.members for i in arm_interners.values()) == 256
    assert sum(i.classes for i in arm_interners.values()) == 16


def test_both_layers_route_through_shared_core(monkeypatch):
    """Monkeypatching the shared core is observed by BOTH layers."""
    import repro.armv8.axiomatic as axiomatic
    import repro.lang.enumeration as enumeration

    calls = []

    def probe(*args, **kwargs):
        calls.append("called")
        return iter(())

    program = store_buffering(True).program

    monkeypatch.setattr(enumeration, "enumerate_assignments", probe)
    assert _js_count(program) == 0
    assert calls == ["called"]

    monkeypatch.setattr(axiomatic, "enumerate_assignments", probe)
    assert _arm_count(compile_program(program).arm) == 0
    assert len(calls) > 1
