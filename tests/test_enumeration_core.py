"""Regression: both grounding layers run on the one shared enumeration core.

PR 3 extracted the pruned-backtracking assignment enumeration that
``lang.enumeration.ground_candidates`` and ``armv8.axiomatic._arm_assignments``
used to implement separately into :mod:`repro.core.groundcore`.  These tests
pin the anti-drift guarantees:

* both layers *route through* the shared core (monkeypatching it is
  observed by both);
* the two layers agree on candidate counts for a fixture set where the
  compilation scheme maps reads/writes one-to-one — a change to one layer's
  pruning that does not reach the other breaks the agreement;
* the known, *intended* divergence (ARM exclusive pairs enumerate
  store-half self-read assignments that only the JS translation rejects)
  is pinned as golden counts so it cannot silently widen.
"""

import pytest

from repro.armv8.axiomatic import _arm_assignments, arm_pre_executions
from repro.compile.scheme import compile_program
from repro.lang.enumeration import ground_executions
from repro.litmus.catalogue import (
    fig1_message_passing,
    fig6_armv8_violation,
    fig8_sc_drf_violation,
    load_buffering,
    message_passing,
    rmw_exchange_mutex,
    store_buffering,
)

# Fixtures whose accesses the compilation scheme maps 1:1 (no exclusive
# pairs), so the two layers must enumerate *the same number* of feasible
# assignments for source and compiled program alike.
AGREEING_FIXTURES = [
    (fig1_message_passing, 136),
    (fig8_sc_drf_violation, 2241),
    (lambda: store_buffering(True), 256),
    (lambda: store_buffering(False), 256),
    (lambda: load_buffering(True), 256),
    (lambda: message_passing(True, False), 256),
    (fig6_armv8_violation, 6561),
]


def _js_count(program):
    return sum(1 for _ in ground_executions(program))


def _arm_count(arm_program):
    return sum(
        1
        for pre in arm_pre_executions(arm_program)
        for _ in _arm_assignments(pre)
    )


@pytest.mark.parametrize(
    "make_test,expected", AGREEING_FIXTURES, ids=lambda v: getattr(v, "__name__", str(v))
)
def test_layers_agree_on_candidate_counts(make_test, expected):
    program = make_test().program
    js = _js_count(program)
    arm = _arm_count(compile_program(program).arm)
    assert js == arm == expected


def test_rmw_divergence_is_pinned():
    """Exclusive pairs: the ARM layer enumerates store-half self-reads.

    The JS RMW is a single event (its read can never be justified by its
    own write), while the compiled ``ldaxr``/``stlxr`` pair lets the load
    half read from its own store half at the assignment level; the
    translation rejects those later.  Pin both counts so a change to either
    layer's pruning shows up here.
    """
    program = rmw_exchange_mutex().program
    assert _js_count(program) == 256
    assert _arm_count(compile_program(program).arm) == 6561


def test_both_layers_route_through_shared_core(monkeypatch):
    """Monkeypatching the shared core is observed by BOTH layers."""
    import repro.armv8.axiomatic as axiomatic
    import repro.lang.enumeration as enumeration

    calls = []

    def probe(*args, **kwargs):
        calls.append("called")
        return iter(())

    program = store_buffering(True).program

    monkeypatch.setattr(enumeration, "enumerate_assignments", probe)
    assert _js_count(program) == 0
    assert calls == ["called"]

    monkeypatch.setattr(axiomatic, "enumerate_assignments", probe)
    assert _arm_count(compile_program(program).arm) == 0
    assert len(calls) > 1
