"""Full-catalogue verdict regression against the recorded golden file.

``tests/data/catalogue_verdicts.json`` records, for every expectation of
every :mod:`repro.litmus.catalogue` entry, the allowed/forbidden verdict
computed by the pre-optimisation (seed) implementation.  The incremental
witness search, the bitset relation kernel and the pruned enumeration must
reproduce these verdicts bit-for-bit.

A second pass cross-checks the incremental witness search itself against
the naive reference (enumerate every linear extension of ``hb`` and run the
full ``is_valid`` pipeline on each) on a sample of ground executions.
"""

import json
from pathlib import Path

import pytest

from repro.core.js_model import (
    ALL_MODELS,
    candidate_total_orders,
    exists_valid_total_order,
    is_valid,
)
from repro.lang.enumeration import ground_executions
from repro.litmus.catalogue import all_tests
from repro.litmus.runner import spec_allowed

GOLDEN_PATH = Path(__file__).parent / "data" / "catalogue_verdicts.json"


def _golden():
    with GOLDEN_PATH.open() as handle:
        return json.load(handle)


@pytest.mark.parametrize("test", all_tests(), ids=lambda t: t.name)
def test_catalogue_verdicts_match_golden(test):
    golden = _golden()
    for expectation in test.expectations:
        key = "|".join(
            (
                test.name,
                expectation.model,
                json.dumps(sorted(expectation.spec_dict.items())),
            )
        )
        assert key in golden, f"golden file is missing {key!r}"
        observed = spec_allowed(test, expectation.spec_dict, expectation.model)
        assert observed == golden[key], (
            f"verdict drift for {key}: golden={golden[key]} observed={observed}"
        )


def _reference_exists_valid_total_order(execution, model):
    """The pre-optimisation search: try every candidate order via is_valid."""
    if not execution.is_well_formed(require_tot=False):
        return None
    for tot in candidate_total_orders(execution, model):
        candidate = execution.with_witness(tot=tot)
        if is_valid(candidate, model, check_well_formed=False):
            return tot
    return None


@pytest.mark.parametrize(
    "model", ALL_MODELS, ids=lambda m: m.name
)
def test_incremental_search_matches_reference(model):
    """Fused/pruned witness search ≡ naive enumerate-and-revalidate search."""
    from repro.litmus.catalogue import (
        fig6_armv8_violation,
        fig8_sc_drf_violation,
        mixed_size_sc_no_sync,
        store_buffering,
    )

    programs = [
        fig8_sc_drf_violation().program,
        store_buffering(True).program,
        mixed_size_sc_no_sync().program,
        fig6_armv8_violation().program,
    ]
    checked = 0
    per_program_cap = 60  # keep the cross-product affordable per model
    for program in programs:
        for i, ground in enumerate(ground_executions(program)):
            if i >= per_program_cap:
                break
            fast = exists_valid_total_order(ground.execution, model)
            slow = _reference_exists_valid_total_order(ground.execution, model)
            # Both must agree on *whether* a witness exists; a found witness
            # must itself validate.
            assert (fast is None) == (slow is None)
            if fast is not None:
                assert is_valid(
                    ground.execution.with_witness(tot=fast),
                    model,
                    check_well_formed=False,
                )
            checked += 1
    assert checked > 50
