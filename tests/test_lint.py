"""The semantics-purity lint: rules, pragmas, digest pin, self-gate."""

import textwrap
from pathlib import Path

import pytest

from repro.analyze import lint
from repro.analyze.lint import (
    ENV_REGISTRY,
    PINNED_FIELD_DIGESTS,
    Finding,
    fingerprint_field_digest,
    run_lint,
)
from repro.dispatch.cache import SEMANTICS_REVISION

REAL_ROOT = lint.default_package_root()


def make_tree(tmp_path, files):
    """A synthetic ``repro``-shaped package root from {relpath: source}."""
    root = tmp_path / "repro"
    for relpath, source in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


def findings_for(tmp_path, files, rule):
    return [f for f in run_lint(make_tree(tmp_path, files)) if f.rule == rule]


class TestImpureImports:
    def test_impure_import_in_verdict_path_is_flagged(self, tmp_path):
        found = findings_for(
            tmp_path, {"core/bad.py": "import time\n"}, "impure-import"
        )
        assert len(found) == 1
        assert "time" in found[0].message

    def test_from_import_is_flagged(self, tmp_path):
        found = findings_for(
            tmp_path,
            {"lang/bad.py": "from random import choice\n"},
            "impure-import",
        )
        assert len(found) == 1

    def test_infrastructure_packages_are_exempt(self, tmp_path):
        found = findings_for(
            tmp_path,
            {"dispatch/clock.py": "import time\n", "service/rng.py": "import random\n"},
            "impure-import",
        )
        assert found == []

    def test_justified_pragma_suppresses(self, tmp_path):
        source = """\
            # lint: allow(impure-import) — only formats human-readable reports
            import time
        """
        assert findings_for(tmp_path, {"core/ok.py": source}, "impure-import") == []

    def test_bare_pragma_is_not_enough(self, tmp_path):
        source = """\
            # lint: allow(impure-import)
            import time
        """
        found = findings_for(tmp_path, {"core/bad.py": source}, "impure-import")
        assert len(found) == 1
        assert "justification" in found[0].message

    def test_pragma_two_lines_above_still_applies(self, tmp_path):
        # The idiom used in repro/analyze/races.py: a two-line pragma
        # comment whose allow(...) line sits above the continuation line.
        source = """\
            # lint: allow(impure-import) — a justification that wraps over
            # a second comment line before the flagged statement
            import time
        """
        assert findings_for(tmp_path, {"core/ok.py": source}, "impure-import") == []


class TestEnvReads:
    def test_unregistered_variable_is_flagged(self, tmp_path):
        source = """\
            import os
            value = os.environ.get("REPRO_NOT_A_KNOB", "")
        """
        found = findings_for(tmp_path, {"dispatch/x.py": source}, "env-unregistered")
        assert len(found) == 1
        assert "REPRO_NOT_A_KNOB" in found[0].message

    def test_registered_read_outside_verdict_path_is_clean(self, tmp_path):
        source = """\
            import os
            WORKERS_ENV = "REPRO_WORKERS"
            value = os.environ.get(WORKERS_ENV)
        """
        findings = run_lint(make_tree(tmp_path, {"dispatch/x.py": source}))
        assert [f for f in findings if f.rule.startswith("env")] == []

    def test_registered_read_on_verdict_path_needs_pragma(self, tmp_path):
        source = """\
            import os
            value = os.environ.get("REPRO_WORKERS")
        """
        found = findings_for(tmp_path, {"core/x.py": source}, "env-read")
        assert len(found) == 1

    def test_dynamic_name_is_flagged(self, tmp_path):
        source = """\
            import os
            def read(name):
                return os.environ.get(name)
        """
        found = findings_for(tmp_path, {"dispatch/x.py": source}, "env-dynamic")
        assert len(found) == 1

    def test_subscript_and_getenv_are_covered(self, tmp_path):
        source = """\
            import os
            a = os.environ["REPRO_UNKNOWN_A"]
            b = os.getenv("REPRO_UNKNOWN_B")
        """
        found = findings_for(tmp_path, {"service/x.py": source}, "env-unregistered")
        assert {("REPRO_UNKNOWN_A" in f.message or "REPRO_UNKNOWN_B" in f.message) for f in found} == {True}
        assert len(found) == 2

    def test_cross_module_constant_resolves(self, tmp_path):
        files = {
            "dispatch/names.py": 'SOME_ENV = "REPRO_RETRIES"\n',
            "dispatch/reader.py": (
                "import os\n"
                "from .names import SOME_ENV\n"
                "value = os.environ.get(SOME_ENV)\n"
            ),
        }
        findings = run_lint(make_tree(tmp_path, files))
        assert [f for f in findings if f.rule.startswith("env")] == []

    def test_registry_names_all_start_with_repro(self):
        assert all(name.startswith("REPRO_") for name in ENV_REGISTRY)


class TestMutableState:
    def test_module_level_dict_literal_is_flagged(self, tmp_path):
        found = findings_for(
            tmp_path, {"core/bad.py": "CACHE = {}\n"}, "mutable-state"
        )
        assert len(found) == 1
        assert "CACHE" in found[0].message

    def test_literals_comprehensions_and_constructors_are_covered(self, tmp_path):
        source = """\
            from collections import defaultdict
            A = []
            B = {x for x in range(3)}
            C = dict()
            D = defaultdict(list)
        """
        found = findings_for(tmp_path, {"lang/bad.py": source}, "mutable-state")
        assert len(found) == 4

    def test_annotated_assignment_is_covered(self, tmp_path):
        source = """\
            from typing import Dict
            TABLE: Dict[str, int] = {}
        """
        found = findings_for(tmp_path, {"core/bad.py": source}, "mutable-state")
        assert len(found) == 1

    def test_memo_structures_are_exempt(self, tmp_path):
        source = """\
            from repro.dispatch.memo import SignatureInterner, _BoundedMemo
            INTERNER = SignatureInterner()
            MEMO = _BoundedMemo(512)
        """
        assert findings_for(tmp_path, {"core/ok.py": source}, "mutable-state") == []

    def test_dunder_metadata_is_exempt(self, tmp_path):
        source = '__all__ = ["a", "b"]\n'
        assert findings_for(tmp_path, {"core/ok.py": source}, "mutable-state") == []

    def test_mutable_default_argument_is_flagged(self, tmp_path):
        source = """\
            def check(program, seen=[], *, notes={}):
                return seen, notes
        """
        found = findings_for(tmp_path, {"lang/bad.py": source}, "mutable-state")
        assert len(found) == 2
        assert all("default" in f.message for f in found)

    def test_infrastructure_packages_are_exempt(self, tmp_path):
        found = findings_for(
            tmp_path, {"dispatch/ok.py": "CACHE = {}\n"}, "mutable-state"
        )
        assert found == []

    def test_justified_pragma_suppresses(self, tmp_path):
        source = """\
            # lint: allow(mutable-state) — read-only registry, never mutated
            TABLE = {"a": 1}
        """
        assert findings_for(tmp_path, {"core/ok.py": source}, "mutable-state") == []

    def test_bare_pragma_is_not_enough(self, tmp_path):
        source = """\
            # lint: allow(mutable-state)
            TABLE = {"a": 1}
        """
        found = findings_for(tmp_path, {"core/bad.py": source}, "mutable-state")
        assert len(found) == 1
        assert "justification" in found[0].message


class TestFingerprintPin:
    def test_digest_is_pinned_for_current_revision(self):
        digest, drift = fingerprint_field_digest(REAL_ROOT)
        assert drift == []
        assert PINNED_FIELD_DIGESTS[SEMANTICS_REVISION] == digest

    def test_digest_is_stable(self):
        assert fingerprint_field_digest(REAL_ROOT) == fingerprint_field_digest(REAL_ROOT)
        digest, _ = fingerprint_field_digest(REAL_ROOT)
        assert len(digest) == 64 and int(digest, 16) >= 0

    def test_missing_registry_file_is_drift(self, tmp_path):
        root = make_tree(tmp_path, {"core/empty.py": "\n"})
        _digest, drift = fingerprint_field_digest(root)
        assert drift
        assert all(f.rule == "registry-drift" for f in drift)

    def test_field_change_moves_the_digest(self, tmp_path):
        # Clone just the registry files, then add a field to one class.
        files = {}
        for relname in lint.FINGERPRINT_CLASS_REGISTRY:
            files[relname] = (REAL_ROOT / relname).read_text(encoding="utf-8")
        baseline_root = make_tree(tmp_path / "baseline", files)
        baseline, drift = fingerprint_field_digest(baseline_root)
        assert drift == []
        real, _ = fingerprint_field_digest(REAL_ROOT)
        assert baseline == real
        files["core/js_model.py"] = files["core/js_model.py"].replace(
            "simplified_sw: bool",
            "simplified_sw: bool\n    rogue_field: int",
            1,
        )
        mutated_root = make_tree(tmp_path / "mutated", files)
        mutated, drift = fingerprint_field_digest(mutated_root)
        assert drift == []
        assert mutated != baseline


class TestSelfGateAndCli:
    def test_real_tree_is_clean(self):
        assert run_lint(REAL_ROOT) == []

    def test_main_strict_on_real_tree_exits_zero(self, capsys):
        assert lint.main(["--strict", "--root", str(REAL_ROOT)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_main_strict_on_dirty_tree_exits_one(self, tmp_path, capsys):
        root = make_tree(tmp_path, {"core/bad.py": "import time\n"})
        assert lint.main(["--strict", "--root", str(root)]) == 1
        out = capsys.readouterr().out
        assert "impure-import" in out

    def test_main_lenient_reports_but_exits_zero(self, tmp_path, capsys):
        root = make_tree(tmp_path, {"core/bad.py": "import time\n"})
        assert lint.main(["--root", str(root)]) == 0
        assert "impure-import" in capsys.readouterr().out

    def test_print_digest(self, capsys):
        assert lint.main(["--print-digest", "--root", str(REAL_ROOT)]) == 0
        digest = capsys.readouterr().out.strip()
        assert digest == PINNED_FIELD_DIGESTS[SEMANTICS_REVISION]

    def test_finding_describe_format(self):
        finding = Finding("core/x.py", 3, "env-read", "message")
        assert finding.describe() == "core/x.py:3: [env-read] message"
