"""The verdict service: protocol, tiered cache, admission, parity, drills.

Covers the ISSUE-8 acceptance points: every verdict served over the wire
is bit-identical to the batch path (same worker functions, same cache
keys), a full bounded queue rejects with ``retry_after`` instead of
buffering, per-request deadlines cancel and reap the work they started, a
client dying mid-stream cancels its request, a worker pool that cannot
spawn opens the circuit breaker (the service keeps serving serially), a
draining service rejects new work while finishing or checkpointing what
is in flight, and SIGTERM under load exits 0 with journals flushed.
"""

import asyncio
import contextlib
import io
import json
import os
import signal
import socket as socket_module
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.dispatch import (
    MISS,
    SEMANTICS_REVISION,
    TieredVerdictCache,
    VerdictCache,
    resolve_lru_capacity,
)
from repro.litmus.catalogue import by_name
from repro.litmus.runner import MODEL_BY_KEY, spec_allowed
from repro.search import SearchBounds, search_sc_drf_violation
from repro.service import (
    ProtocolError,
    RemoteRequestError,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceRejected,
    VerdictService,
    encode_frame,
    read_frame_blocking,
)
from repro.service.protocol import HEADER_SIZE, MAX_FRAME_BYTES, _HEADER, MAGIC

REPO_ROOT = Path(__file__).resolve().parent.parent

# A fast, representative catalogue subset (same as test_dispatch).
FAST_TESTS = ["sb-sc", "lb-sc", "corr-un", "mp-un-sc", "mixed-size-overlap"]

# A tiny shape space: 10 programs, all checked in well under a second.
TINY_BOUNDS = {
    "threads": 2,
    "max_accesses_per_thread": 1,
    "max_total_accesses": 2,
    "locations": 1,
    "values": [1],
    "guarded_observer": False,
}

# The §5.4 bound that contains the Fig. 8 counter-example (252 programs).
SC_DRF_BOUNDS = {
    "threads": 2,
    "max_accesses_per_thread": 2,
    "max_total_accesses": 4,
    "locations": 1,
    "values": [1, 2],
    "guarded_observer": True,
}

# A deliberately long-running request for the load drills: a large space
# (14k+ programs) under the *repaired* model, which has no SC-DRF hit in
# these bounds — the sweep cannot finish within any drill's window, so
# backpressure, deadlines, drains and client deaths are exercised against
# genuinely in-flight work.
LONG_SWEEP = {
    "kind": "sc-drf",
    "model": "final",
    "bounds": {**SC_DRF_BOUNDS, "locations": 2},
    "chunk": 1,
}


@contextlib.contextmanager
def running_service(tmp_path, *, cache=False, **config_kwargs):
    """A VerdictService on its own thread, torn down on exit."""
    if "host" not in config_kwargs:
        config_kwargs.setdefault("socket_path", str(tmp_path / "svc.sock"))
    config_kwargs.setdefault("workers", 1)
    service = VerdictService(ServiceConfig(**config_kwargs), cache=cache)
    ready = threading.Event()
    thread = threading.Thread(
        target=lambda: asyncio.run(
            service.run(install_signals=False, on_ready=lambda _s: ready.set())
        ),
        daemon=True,
    )
    thread.start()
    assert ready.wait(10), "service did not come up"
    try:
        yield service
    finally:
        if not service._stopped.is_set():
            try:
                service.stop_from_thread(grace=1.0)
            except Exception:
                pass
        thread.join(10)
        assert not thread.is_alive(), "service thread failed to stop"


def _poll(predicate, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# ---------------------------------------------------------------------------
# the frame protocol
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_round_trip(self):
        message = {"op": "health", "id": 3, "args": {"x": [1, 2]}}
        stream = io.BytesIO(encode_frame(message))
        assert read_frame_blocking(stream) == message
        assert read_frame_blocking(stream) is None  # clean EOF

    def test_corrupt_payload_fails_checksum(self):
        frame = bytearray(encode_frame({"op": "health", "id": 1}))
        frame[-1] ^= 0xFF
        with pytest.raises(ProtocolError, match="checksum"):
            read_frame_blocking(io.BytesIO(bytes(frame)))

    def test_bad_magic(self):
        frame = bytearray(encode_frame({"id": 1}))
        frame[0] = ord("X")
        with pytest.raises(ProtocolError, match="magic"):
            read_frame_blocking(io.BytesIO(bytes(frame)))

    def test_truncated_header_and_payload(self):
        frame = encode_frame({"id": 1})
        with pytest.raises(ProtocolError, match="mid-header"):
            read_frame_blocking(io.BytesIO(frame[: HEADER_SIZE - 2]))
        with pytest.raises(ProtocolError, match="mid-payload"):
            read_frame_blocking(io.BytesIO(frame[: HEADER_SIZE + 2]))

    def test_oversized_declared_length_rejected_before_allocation(self):
        header = _HEADER.pack(MAGIC, MAX_FRAME_BYTES + 1, b"\0" * 16)
        with pytest.raises(ProtocolError, match="bound"):
            read_frame_blocking(io.BytesIO(header))

    def test_checksummed_garbage_is_still_a_protocol_error(self):
        payload = b"not json at all"
        import hashlib

        header = _HEADER.pack(
            MAGIC, len(payload), hashlib.sha256(payload).digest()[:16]
        )
        with pytest.raises(ProtocolError, match="not valid JSON"):
            read_frame_blocking(io.BytesIO(header + payload))


# ---------------------------------------------------------------------------
# the in-process LRU tier
# ---------------------------------------------------------------------------


class TestTieredCache:
    def test_pure_lru_without_backing(self):
        tier = TieredVerdictCache(None, capacity=2)
        key = tier.key("a")
        assert tier.get(key) is MISS
        tier.put(key, True)
        assert tier.get(key) is True
        stats = tier.stats()
        assert stats["lru_hits"] == 1
        assert stats["lru_misses"] == 1
        assert tier.spec is None

    def test_eviction_is_least_recently_used(self):
        tier = TieredVerdictCache(None, capacity=2)
        ka, kb, kc = tier.key("a"), tier.key("b"), tier.key("c")
        tier.put(ka, 1)
        tier.put(kb, 2)
        assert tier.get(ka) == 1  # refresh a; b is now the LRU entry
        tier.put(kc, 3)
        assert tier.get(kb) is MISS
        assert tier.get(ka) == 1
        assert tier.stats()["lru_evictions"] == 1

    def test_write_through_and_backing_promotion(self, tmp_path):
        backing = VerdictCache(tmp_path)
        tier = TieredVerdictCache(backing, capacity=8)
        key = tier.key("shared")
        tier.put(key, False)
        # Write-through: the persistent layer has it.
        assert backing.get(key) is False
        # A fresh tier (new process, same store) promotes the backing hit.
        fresh = TieredVerdictCache(VerdictCache(tmp_path), capacity=8)
        assert fresh.get(key) is False
        assert fresh.stats()["lru_entries"] == 1
        assert fresh.get(key) is False
        assert fresh.stats()["lru_hits"] == 1

    def test_get_or_compute_computes_once(self):
        tier = TieredVerdictCache(None, capacity=8)
        calls = []

        def compute():
            calls.append(1)
            return True

        key = tier.key("k")
        assert tier.get_or_compute(key, compute) is True
        assert tier.get_or_compute(key, compute) is True
        assert len(calls) == 1

    def test_capacity_zero_disables_the_tier(self):
        tier = TieredVerdictCache(None, capacity=0)
        key = tier.key("x")
        tier.put(key, True)
        assert tier.get(key) is MISS

    def test_revision_follows_the_backing(self, tmp_path):
        backing = VerdictCache(tmp_path)
        tier = TieredVerdictCache(backing, capacity=4)
        assert tier.revision == backing.revision == SEMANTICS_REVISION

    def test_resolve_lru_capacity(self, monkeypatch):
        monkeypatch.delenv("REPRO_LRU_TIER", raising=False)
        assert resolve_lru_capacity(None) == 4096
        assert resolve_lru_capacity(7) == 7
        monkeypatch.setenv("REPRO_LRU_TIER", "128")
        assert resolve_lru_capacity(None) == 128
        monkeypatch.setenv("REPRO_LRU_TIER", "off")
        assert resolve_lru_capacity(None) == 0
        monkeypatch.setenv("REPRO_LRU_TIER", "banana")
        with pytest.warns(RuntimeWarning):
            assert resolve_lru_capacity(None) == 4096


# ---------------------------------------------------------------------------
# serving: endpoints and parity with the batch path
# ---------------------------------------------------------------------------


class TestServing:
    def test_health_and_stats(self, tmp_path):
        with running_service(tmp_path) as service:
            with ServiceClient(service.address) as client:
                health = client.health()
                assert health["ok"] is True
                assert health["status"] == "serving"
                assert health["queue_limit"] == service.config.queue_depth
                stats = client.stats()
                assert stats["semantics_revision"] == SEMANTICS_REVISION
                assert stats["breaker"]["state"] == "closed"
                assert isinstance(stats["analyze"]["enabled"], bool)
                assert set(stats["analyze"]) >= {
                    "fast_path_hits",
                    "fast_path_misses",
                    "pruned_rf_edges",
                    "dead_outcomes",
                    "race_pairs",
                }
                assert isinstance(stats["symmetry"]["enabled"], bool)
                assert set(stats["symmetry"]) >= {
                    "programs_canonicalized",
                    "orbits_seen",
                    "members_skipped",
                    "canonical_cache_hits",
                    "parity_failures",
                    "independent_splits",
                }
                assert set(stats["counters"]) >= {
                    "admitted",
                    "served",
                    "rejected_full",
                    "cancelled",
                }

    def test_catalogue_verdicts_are_bit_identical_to_batch(self, tmp_path):
        with running_service(tmp_path) as service:
            with ServiceClient(service.address) as client:
                items = client.request("catalogue", {"names": FAST_TESTS})
        assert [item["test"] for item in items] == FAST_TESTS
        for item in items:
            test = by_name(item["test"])
            batch = [
                spec_allowed(test, e.spec_dict, e.model, cache=False)
                for e in test.expectations
            ]
            assert item["verdicts"] == batch
            assert item["expected"] == [e.allowed for e in test.expectations]
            assert item["passed"] == (batch == [e.allowed for e in test.expectations])

    def test_outcome_is_bit_identical_to_spec_allowed(self, tmp_path):
        with running_service(tmp_path) as service:
            with ServiceClient(service.address) as client:
                for name in FAST_TESTS[:3]:
                    test = by_name(name)
                    for expectation in test.expectations:
                        (item,) = client.request(
                            "outcome",
                            {
                                "test": name,
                                "model": expectation.model,
                                "spec": expectation.spec_dict,
                            },
                        )
                        assert item["allowed"] == spec_allowed(
                            test,
                            expectation.spec_dict,
                            expectation.model,
                            cache=False,
                        )

    def test_sweep_finds_the_fig8_counterexample_with_early_exit(
        self, tmp_path
    ):
        with running_service(tmp_path) as service:
            with ServiceClient(service.address) as client:
                items = client.request(
                    "sweep",
                    {"kind": "sc-drf", "bounds": SC_DRF_BOUNDS, "chunk": 64},
                )
        final = items[-1]
        assert final["found"] is True
        batch = search_sc_drf_violation(
            SearchBounds(
                **{
                    **SC_DRF_BOUNDS,
                    "values": tuple(SC_DRF_BOUNDS["values"]),
                }
            ),
            cache=False,
        )
        assert batch.counterexample is not None
        assert final["counterexample"] == batch.counterexample.describe()
        assert final["programs_examined"] == batch.programs_examined

    def test_sweep_exhausts_clean_bounds(self, tmp_path):
        with running_service(tmp_path) as service:
            with ServiceClient(service.address) as client:
                items = client.request(
                    "sweep",
                    {"kind": "sc-drf", "bounds": TINY_BOUNDS, "chunk": 4},
                )
        assert items[-1] == {
            "found": False,
            "programs_examined": 10,
            "exhausted": True,
        }
        assert sum(item["examined"] for item in items[:-1]) == 10

    def test_corpus_matches_direct_check(self, tmp_path):
        from repro.compile.correctness import corpus_check_task

        name = "sb-sc"
        with running_service(tmp_path) as service:
            with ServiceClient(service.address) as client:
                (item,) = client.request("corpus", {"names": [name]})
        direct = corpus_check_task(
            (by_name(name).program, MODEL_BY_KEY["final"], False, True, None)
        )
        assert item["correct"] == direct.correct
        assert item["arm_executions"] == direct.arm_executions
        assert item["valid_with_construction"] == direct.valid_with_construction
        assert item["valid_with_search"] == direct.valid_with_search

    def test_served_verdicts_identical_with_and_without_caches(self, tmp_path):
        uncached_dir = tmp_path / "uncached"
        cached_dir = tmp_path / "cached"
        uncached_dir.mkdir()
        cached_dir.mkdir()
        with running_service(uncached_dir, cache=False) as service:
            with ServiceClient(service.address) as client:
                cold = client.request("catalogue", {"names": FAST_TESTS[:3]})
        cache = VerdictCache(cached_dir / "store")
        with running_service(cached_dir, cache=cache) as service:
            with ServiceClient(service.address) as client:
                first = client.request("catalogue", {"names": FAST_TESTS[:3]})
                warm = client.request("catalogue", {"names": FAST_TESTS[:3]})
                stats = client.stats()
        assert cold == first == warm
        assert stats["cache"]["lru_hits"] > 0  # the warm pass hit the tier

    def test_bad_requests_get_error_frames_not_disconnects(self, tmp_path):
        with running_service(tmp_path) as service:
            with ServiceClient(service.address) as client:
                with pytest.raises(RemoteRequestError, match="unknown op"):
                    client.request("frobnicate")
                with pytest.raises(
                    RemoteRequestError, match="unknown catalogue test"
                ):
                    client.request("catalogue", {"names": ["no-such-test"]})
                with pytest.raises(RemoteRequestError, match="unknown model"):
                    client.request(
                        "outcome",
                        {"test": "sb-sc", "model": "bogus", "spec": {"r0": 0}},
                    )
                with pytest.raises(
                    RemoteRequestError, match="unknown bounds field"
                ):
                    client.request(
                        "sweep", {"kind": "sc-drf", "bounds": {"nope": 1}}
                    )
                # The connection survived all of that.
                assert client.health()["ok"] is True

    def test_tcp_transport(self, tmp_path):
        with running_service(
            tmp_path, host="127.0.0.1", port=0
        ) as service:
            host, port = service.address
            assert port != 0
            with ServiceClient(f"{host}:{port}") as client:
                assert client.health()["ok"] is True
                items = client.request("catalogue", {"names": ["sb-sc"]})
                assert items[0]["test"] == "sb-sc"


# ---------------------------------------------------------------------------
# resilience drills
# ---------------------------------------------------------------------------


class TestResilience:
    def test_full_queue_rejects_with_retry_after(self, tmp_path):
        with running_service(
            tmp_path, queue_depth=1, concurrency=1, retry_after=2.5
        ) as service:
            monitor = ServiceClient(service.address)
            sweep_args = LONG_SWEEP
            c1 = ServiceClient(service.address)
            s1 = c1.stream("sweep", sweep_args)
            assert _poll(lambda: monitor.health()["in_flight"] == 1)
            c2 = ServiceClient(service.address)
            s2 = c2.stream("sweep", sweep_args)
            assert _poll(lambda: monitor.health()["queue_depth"] == 1)
            c3 = ServiceClient(service.address)
            with pytest.raises(ServiceRejected) as excinfo:
                c3.request("sweep", sweep_args)
            assert excinfo.value.reason == "queue-full"
            assert excinfo.value.retry_after == 2.5
            assert monitor.stats()["counters"]["rejected_full"] == 1
            s1.cancel()
            s2.cancel()
            for client in (c1, c2, c3, monitor):
                client.close()

    def test_early_exit_cancels_server_side_work(self, tmp_path):
        with running_service(tmp_path) as service:
            with ServiceClient(service.address) as client:
                stream = client.stream("catalogue")
                first = next(stream)
                assert first["test"]
                terminal = stream.cancel()
                assert terminal["kind"] in ("cancelled", "done")
                # The connection is reusable after a cancelled stream.
                assert client.health()["ok"] is True
                assert _poll(
                    lambda: client.stats()["counters"]["cancelled"] >= 1
                )

    def test_deadline_expiry_cancels_and_reports(self, tmp_path):
        with running_service(tmp_path) as service:
            with ServiceClient(service.address) as client:
                with pytest.raises(RemoteRequestError) as excinfo:
                    client.request("sweep", LONG_SWEEP, deadline=0.05)
                assert excinfo.value.code == "deadline"
                assert _poll(
                    lambda: client.stats()["counters"]["deadline_expired"]
                    >= 1
                )

    def test_client_death_mid_stream_reaps_the_request(self, tmp_path):
        with running_service(tmp_path) as service:
            victim = ServiceClient(service.address)
            stream = victim.stream("sweep", LONG_SWEEP)
            next(stream)  # the request is live and streaming
            victim.close()  # die abruptly, without a cancel frame
            with ServiceClient(service.address) as monitor:
                assert _poll(
                    lambda: monitor.stats()["counters"]["cancelled"] >= 1
                ), "server never noticed the dead client"

    def test_pool_death_opens_the_breaker_and_service_keeps_serving(
        self, tmp_path, monkeypatch
    ):
        from repro.dispatch import supervise as supervise_module

        monkeypatch.setattr(
            supervise_module, "_spawn_worker", lambda *args: None
        )
        with running_service(
            tmp_path, workers=2, breaker_threshold=1, breaker_cooldown=60.0
        ) as service:
            with ServiceClient(service.address) as client:
                items = client.request(
                    "sweep",
                    {"kind": "sc-drf", "bounds": TINY_BOUNDS, "chunk": 4},
                )
                # Served correctly despite the dead pool (degraded serial).
                assert items[-1]["found"] is False
                stats = client.stats()
                assert stats["supervision"]["degraded_serial_runs"] >= 1
                assert stats["breaker"]["state"] == "open"
                # While open, requests run serially: no new pool deaths.
                degraded_before = stats["supervision"]["degraded_serial_runs"]
                again = client.request(
                    "sweep",
                    {"kind": "sc-drf", "bounds": TINY_BOUNDS, "chunk": 4},
                )
                assert again[-1]["found"] is False
                after = client.stats()["supervision"]["degraded_serial_runs"]
                assert after == degraded_before

    def test_draining_service_rejects_new_work(self, tmp_path):
        with running_service(tmp_path, drain_grace=0.5) as service:
            busy = ServiceClient(service.address)
            stream = busy.stream("sweep", LONG_SWEEP)
            next(stream)
            monitor = ServiceClient(service.address)
            drain_future = asyncio.run_coroutine_threadsafe(
                service.drain(), service._loop
            )
            assert _poll(
                lambda: monitor.health()["status"] == "draining"
            )
            late = ServiceClient(service.address)
            with pytest.raises(ServiceRejected) as excinfo:
                late.request("catalogue", {"names": ["sb-sc"]})
            assert excinfo.value.reason == "draining"
            # The in-flight sweep terminates (checkpointed or cancelled).
            with contextlib.suppress(ServiceError):
                for _ in stream:
                    pass
            assert stream.terminal is not None
            drain_future.result(timeout=30)
            for client in (busy, monitor, late):
                client.close()

    def test_sweep_journal_checkpoints_and_resumes_across_requests(
        self, tmp_path, monkeypatch
    ):
        from repro.search import counterexamples as counterexamples_module

        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path / "ckpt"))
        # Slow each slice down so the cancel deterministically lands while
        # the sweep is still mid-flight (the service runs in-process, so
        # its request thread sees this monkeypatch).
        real_worker = counterexamples_module._sweep_chunk_worker

        def slowed(task):
            time.sleep(0.25)
            return real_worker(task)

        monkeypatch.setattr(
            counterexamples_module, "_sweep_chunk_worker", slowed
        )
        with running_service(tmp_path) as service:
            with ServiceClient(service.address) as client:
                stream = client.stream(
                    "sweep",
                    {"kind": "sc-drf", "bounds": TINY_BOUNDS, "chunk": 2},
                )
                next(stream)
                stream.cancel()  # abandon mid-sweep: the journal is kept
                journals = list(
                    (tmp_path / "ckpt").glob("service-sc-drf-*.journal")
                )
                assert journals, "cancelled sweep left no journal"
                items = client.request(
                    "sweep",
                    {"kind": "sc-drf", "bounds": TINY_BOUNDS, "chunk": 2},
                )
                assert items[0]["resumed"] is True
                assert items[-1] == {
                    "found": False,
                    "programs_examined": 10,
                    "exhausted": True,
                }
                # A completed sweep retires its journal.
                assert not list(
                    (tmp_path / "ckpt").glob("service-sc-drf-*.journal")
                )

    def test_sigterm_under_load_exits_zero_with_journal_flushed(
        self, tmp_path
    ):
        socket_path = tmp_path / "svc.sock"
        checkpoint_dir = tmp_path / "ckpt"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env["REPRO_CHECKPOINT_DIR"] = str(checkpoint_dir)
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.service",
                "--socket",
                str(socket_path),
                "--workers",
                "1",
                "--drain-grace",
                "0.5",
                "--cache",
                "off",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            assert _poll(socket_path.exists, timeout=30), (
                "server socket never appeared"
            )
            client = ServiceClient(str(socket_path))
            stream = client.stream("sweep", LONG_SWEEP)
            next(stream)  # at least one slice completed and journaled
            process.send_signal(signal.SIGTERM)
            output, _ = process.communicate(timeout=60)
            assert process.returncode == 0, (
                f"drain did not exit 0:\n{output}"
            )
            assert "listening on" in output
            journals = list(checkpoint_dir.glob("service-sc-drf-*.journal"))
            assert journals, "SIGTERM drain flushed no sweep journal"
            client.close()
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate(timeout=10)


# ---------------------------------------------------------------------------
# the CLIs
# ---------------------------------------------------------------------------


class TestCommandLine:
    def test_repro_query_against_a_live_server(self, tmp_path, capsys):
        from repro.service.client import main as query_main

        with running_service(tmp_path) as service:
            address = str(service.address)
            assert query_main(["--connect", address, "health"]) == 0
            health = json.loads(capsys.readouterr().out)
            assert health["ok"] is True
            assert (
                query_main(
                    ["--connect", address, "catalogue", "sb-sc", "lb-sc"]
                )
                == 0
            )
            lines = capsys.readouterr().out.strip().splitlines()
            assert [json.loads(line)["test"] for line in lines] == [
                "sb-sc",
                "lb-sc",
            ]
            assert (
                query_main(
                    ["--connect", address, "catalogue", "--first", "1"]
                )
                == 0
            )
            lines = capsys.readouterr().out.strip().splitlines()
            assert len(lines) == 1
            assert (
                query_main(
                    [
                        "--connect",
                        address,
                        "outcome",
                        "sb-sc",
                        "0:r0=0",
                        "1:r1=0",
                        "--model",
                        "sc",
                    ]
                )
                == 0
            )
            outcome = json.loads(capsys.readouterr().out)
            assert outcome["allowed"] is False

    def test_repro_query_exit_codes(self, tmp_path, capsys, monkeypatch):
        from repro.service.client import main as query_main

        # No address at all → connection error path.
        for name in ("REPRO_SERVICE_SOCKET", "REPRO_SERVICE_HOST", "REPRO_SERVICE_PORT"):
            monkeypatch.delenv(name, raising=False)
        assert query_main(["health"]) == 1
        capsys.readouterr()
        with running_service(tmp_path) as service:
            address = str(service.address)
            # A remote validation error is exit 1.
            assert (
                query_main(
                    ["--connect", address, "catalogue", "no-such-test"]
                )
                == 1
            )

    def test_repro_serve_validates_arguments(self, capsys):
        from repro.service.server import main as serve_main

        with pytest.raises(SystemExit):
            serve_main(["--port", "not-a-number"])
