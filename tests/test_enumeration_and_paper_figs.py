"""End-to-end tests: candidate-execution enumeration and the paper's figures.

These are the headline acceptance tests of the reproduction: each figure of
the paper is a litmus test in the catalogue, and the enumeration + model
machinery must reproduce the paper's allowed/forbidden verdicts.
"""

import pytest

from repro.core.js_model import ARMV8_FIX_MODEL, FINAL_MODEL, ORIGINAL_MODEL
from repro.lang.enumeration import (
    allowed_outcomes,
    ground_executions,
    non_sc_outcomes,
    outcome_allowed,
    program_is_data_race_free,
    program_satisfies_sc_drf,
)
from repro.lang.wait_notify import wait_notify_outcome_allowed
from repro.litmus.catalogue import (
    all_tests,
    fig1_message_passing,
    fig6_armv8_violation,
    fig8_sc_drf_violation,
    fig13_wait_notify,
    fig14_init_tearing,
    mixed_size_tearing_halves,
    paper_tests,
)
from repro.litmus.runner import run_test


class TestEnumerationBasics:
    def test_ground_executions_are_well_formed(self):
        program = fig1_message_passing().program
        grounds = list(ground_executions(program))
        assert grounds
        for ground in grounds:
            assert ground.execution.is_well_formed(require_tot=False)

    def test_allowed_outcomes_subset_of_ground_outcomes(self):
        program = fig1_message_passing().program
        ground = {tuple(sorted(g.outcome.items())) for g in ground_executions(program)}
        allowed = {tuple(sorted(o.items())) for o in allowed_outcomes(program)}
        assert allowed <= ground


class TestFig1MessagePassing:
    def test_expected_verdicts(self):
        result = run_test(fig1_message_passing())
        assert result.passed, [r.describe() for r in result.results if not r.passed]

    def test_data_race_freedom_depends_on_flag_mode(self):
        # With an atomic flag the guarded data read is always hb-ordered
        # after the data write, so Fig. 1 is data-race-free; making the flag
        # non-atomic removes the synchronisation and introduces races.
        assert program_is_data_race_free(fig1_message_passing().program)
        from repro.litmus.catalogue import fig1_relaxed_flag

        assert not program_is_data_race_free(fig1_relaxed_flag().program)


class TestFig6ArmV8Violation:
    """Fig. 6: forbidden by the original model, allowed once the fix is adopted."""

    def test_outcome_forbidden_under_original_model(self):
        program = fig6_armv8_violation().program
        outcome = {"0:r1": 1, "1:r2": 1}
        assert not outcome_allowed(program, outcome, ORIGINAL_MODEL)

    def test_outcome_allowed_under_fixed_models(self):
        program = fig6_armv8_violation().program
        outcome = {"0:r1": 1, "1:r2": 1}
        assert outcome_allowed(program, outcome, ARMV8_FIX_MODEL)
        assert outcome_allowed(program, outcome, FINAL_MODEL)


class TestFig8ScDrfViolation:
    def test_program_is_data_race_free(self):
        program = fig8_sc_drf_violation().program
        assert program_is_data_race_free(program, ORIGINAL_MODEL)
        assert program_is_data_race_free(program, FINAL_MODEL)

    def test_original_model_has_non_sc_outcome(self):
        program = fig8_sc_drf_violation().program
        weird = non_sc_outcomes(program, ORIGINAL_MODEL)
        assert {"1:r0": 1, "1:r1": 2} in weird
        assert not program_satisfies_sc_drf(program, ORIGINAL_MODEL)

    def test_final_model_restores_sc_drf(self):
        program = fig8_sc_drf_violation().program
        assert non_sc_outcomes(program, FINAL_MODEL) == []
        assert program_satisfies_sc_drf(program, FINAL_MODEL)


class TestFig13WaitNotify:
    def test_corrected_semantics_forbids_stale_read_and_stuck_waiter(self):
        program = fig13_wait_notify().program
        assert not wait_notify_outcome_allowed(program, {"0:r0": 0}, corrected=True)
        assert wait_notify_outcome_allowed(program, {"0:r0": 42}, corrected=True)

    def test_uncorrected_semantics_allows_both_fig13_behaviours(self):
        program = fig13_wait_notify().program
        # Fig. 13b: the woken waiter still reads 0.
        assert wait_notify_outcome_allowed(program, {"0:r0": 0}, corrected=False)
        # Fig. 13c: the waiter suspends forever although notify already ran.
        assert wait_notify_outcome_allowed(program, {"1:r1": 0}, corrected=False)


class TestFig14InitTearing:
    def test_expected_verdicts(self):
        result = run_test(fig14_init_tearing())
        assert result.passed, [r.describe() for r in result.results if not r.passed]


class TestCatalogue:
    @pytest.mark.parametrize(
        "test", [t for t in paper_tests() if t.name != "fig6-armv8-violation"],
        ids=lambda t: t.name,
    )
    def test_paper_figures(self, test):
        result = run_test(test)
        assert result.passed, [r.describe() for r in result.results if not r.passed]

    @pytest.mark.parametrize(
        "test",
        [t for t in all_tests() if "classic" in t.tags or "mixed-size" in t.tags],
        ids=lambda t: t.name,
    )
    def test_classic_and_mixed_size_shapes(self, test):
        result = run_test(test)
        assert result.passed, [r.describe() for r in result.results if not r.passed]

    def test_catalogue_is_nonempty_and_named_uniquely(self):
        names = [t.name for t in all_tests()]
        assert len(names) == len(set(names))
        assert len(names) >= 15

    def test_mixed_size_halves_allows_byte_mixing(self):
        test = mixed_size_tearing_halves()
        outcomes = allowed_outcomes(test.program, FINAL_MODEL)
        values = {o.get("1:r0") for o in outcomes}
        assert 0x00020001 in values and 0x00020000 in values
