"""Validate the mixed-size ARMv8 axiomatic model against the operational model (§4.1).

The paper gains confidence in its new mixed-size axiomatic model by running
an 11,587-test litmus corpus through the Flat operational model and
checking that every operational execution is axiomatically allowed.  This
example performs the same soundness check with the diy-style generated
corpus and the Flat-substitute operational simulator, and reports the same
statistics (corpus size, mixed-size split, executions checked, failures).

Run with:  python examples/armv8_model_validation.py  [corpus-size]
"""

import sys

from repro.armv8 import validate_corpus
from repro.litmus import GeneratorConfig, generate_arm_corpus


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    config = GeneratorConfig(locations=2, accesses_per_thread=2, max_tests=size)
    corpus = list(generate_arm_corpus(config))

    result = validate_corpus(corpus)
    print(result.summary())
    print(f"  tests               : {result.programs}")
    print(f"  mixed-size tests    : {result.mixed_size_programs}")
    print(f"  executions checked  : {result.executions}")
    print(f"  axiomatic rejections: {result.failures}")
    worst = max(result.per_program, key=lambda p: p.executions)
    print(f"  largest test        : {worst.program} ({worst.executions} executions)")


if __name__ == "__main__":
    main()
