"""Reproduce the paper's headline finding: the ARMv8 compilation-scheme violation (§3.1).

The script follows the Fig. 6 story end to end:

1. the JavaScript program whose outcome ``r1 = 1 ∧ r2 = 1`` the ES2019
   (original) memory model forbids;
2. its compilation to ARMv8 under the V8 scheme (``Atomics`` → ``ldar``/
   ``stlr``, plain accesses → ``ldr``/``str``);
3. evidence that ARMv8 allows the outcome — from both the mixed-size
   axiomatic model and the Flat-style operational model (the paper's
   hardware observation plays this role);
4. the repaired (TC39-adopted) model allowing the outcome, and the bounded
   compilation-correctness check passing for it (§5.3).

Run with:  python examples/armv8_compilation_bug.py
"""

from repro.armv8 import arm_operational_outcomes, arm_outcome_allowed
from repro.compile import check_program_compilation, compile_program, find_compilation_violation
from repro.core import ARMV8_FIX_MODEL, FINAL_MODEL, ORIGINAL_MODEL
from repro.lang import outcome_allowed
from repro.litmus.catalogue import fig6_armv8_violation


def main() -> None:
    test = fig6_armv8_violation()
    program = test.program
    outcome = {"0:r1": 1, "1:r2": 1}

    print(program.describe())
    print(f"\nQuestioned outcome: {outcome}")

    print("\n[1] JavaScript model verdicts")
    print("    ES2019 (original) model :", "allowed" if outcome_allowed(program, outcome, ORIGINAL_MODEL) else "forbidden")
    print("    ARMv8-fix model         :", "allowed" if outcome_allowed(program, outcome, ARMV8_FIX_MODEL) else "forbidden")
    print("    final (TC39) model      :", "allowed" if outcome_allowed(program, outcome, FINAL_MODEL) else "forbidden")

    print("\n[2] Compilation to ARMv8 (V8 scheme)")
    compiled = compile_program(program)
    for tid, thread in enumerate(compiled.arm.threads):
        mnemonics = ", ".join(
            getattr(i, "mnemonic", lambda: "ctrl")() for i in thread.instructions
        )
        print(f"    Thread {tid}: {mnemonics}")

    print("\n[3] Does ARMv8 allow the compiled outcome?")
    arm_spec = {"0:r1": 1, "1:r2": 1}
    print("    axiomatic model   :", arm_outcome_allowed(compiled.arm, arm_spec))
    operational = arm_operational_outcomes(compiled.arm)
    print("    operational model :", any(
        all(o.get(k) == v for k, v in arm_spec.items()) for o in operational
    ))

    print("\n[4] Compilation-scheme correctness (bounded check, §5.3)")
    violation = find_compilation_violation(program, ORIGINAL_MODEL)
    print("    against the original model :",
          f"VIOLATED — counter-example with {violation.event_count} events, "
          f"{violation.byte_location_count} byte locations" if violation else "correct")
    result = check_program_compilation(program, FINAL_MODEL)
    print("    against the final model    :", result.summary())


if __name__ == "__main__":
    main()
