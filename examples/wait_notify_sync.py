"""Atomics.wait / Atomics.notify synchronisation — the §7 correction.

The Fig. 13 program should always terminate with the waiter reading 42, but
the ES2019 specification never told the memory model about the wait-queue
critical section, so the axiomatic model also admitted the two undesirable
executions of Fig. 13b/13c.  This example contrasts the uncorrected and
corrected semantics.

Run with:  python examples/wait_notify_sync.py
"""

from repro.lang import wait_notify_allowed_outcomes
from repro.litmus.catalogue import fig13_wait_notify


def show(title, outcomes):
    print(title)
    for outcome in sorted(outcomes, key=lambda o: sorted(o.items())):
        suffix = "" if "0:r0" in outcome else "   (waiter suspended forever)"
        print("   ", dict(sorted(outcome.items())), suffix)


def main() -> None:
    program = fig13_wait_notify().program
    print(program.describe())

    show(
        "\nOutcomes without the critical-section synchronisation (uncorrected spec):",
        wait_notify_allowed_outcomes(program, corrected=False),
    )
    show(
        "\nOutcomes with the corrective additional-synchronizes-with edges (§7):",
        wait_notify_allowed_outcomes(program, corrected=True),
    )
    print(
        "\nWith the correction the waiter can neither read a stale 0 after being "
        "woken (Fig. 13b) nor suspend forever after the notify already ran (Fig. 13c)."
    )


if __name__ == "__main__":
    main()
