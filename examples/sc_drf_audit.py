"""Audit programs for SC-DRF: data-race freedom and sequential consistency (§3.2).

The SC-DRF guarantee is the contract programmers rely on: if a program is
free of data races, it behaves as if memory were sequentially consistent.
The ES2019 model broke this contract (Fig. 8); the corrected model restores
it.  This example

1. audits the Fig. 8 program under both models,
2. audits an ordinary, correctly synchronised message-passing program, and
3. runs the bounded §5.4 search that rediscovers the minimal (4-event,
   1-location) counter-example automatically.

Run with:  python examples/sc_drf_audit.py
"""

from repro.core import FINAL_MODEL, ORIGINAL_MODEL
from repro.lang import (
    non_sc_outcomes,
    program_is_data_race_free,
    program_satisfies_sc_drf,
    sc_outcomes,
)
from repro.litmus.catalogue import fig1_message_passing, fig8_sc_drf_violation
from repro.search import SearchBounds, search_sc_drf_violation


def audit(program, model):
    drf = program_is_data_race_free(program, model)
    weird = non_sc_outcomes(program, model) if drf else []
    print(f"  under {model.name}:")
    print(f"    data-race-free       : {drf}")
    if drf:
        print(f"    non-SC outcomes      : {weird if weird else 'none'}")
        print(f"    SC-DRF respected     : {program_satisfies_sc_drf(program, model)}")


def main() -> None:
    fig8 = fig8_sc_drf_violation().program
    print("== Fig. 8 program ==")
    print(fig8.describe())
    print("  SC oracle outcomes:", [dict(sorted(o.items())) for o in sc_outcomes(fig8)])
    audit(fig8, ORIGINAL_MODEL)
    audit(fig8, FINAL_MODEL)

    print("\n== Fig. 1 message passing ==")
    fig1 = fig1_message_passing().program
    audit(fig1, FINAL_MODEL)

    print("\n== Bounded §5.4 search for SC-DRF violations (original model) ==")
    bounds = SearchBounds(
        threads=2,
        max_accesses_per_thread=2,
        max_total_accesses=4,
        locations=1,
        values=(1, 2),
        guarded_observer=True,
    )
    report = search_sc_drf_violation(bounds, ORIGINAL_MODEL)
    print(f"  programs examined : {report.programs_examined}")
    if report.found:
        print(" ", report.counterexample.describe())
        print(report.counterexample.program.describe())


if __name__ == "__main__":
    main()
