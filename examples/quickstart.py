"""Quickstart: build a litmus program and ask the JavaScript memory model about it.

This walks the Fig. 1 example of the paper end to end:

1. declare a SharedArrayBuffer and an Int32 typed array over it,
2. write the two-threaded message-passing program,
3. enumerate the outcomes the corrected (TC39-adopted) model allows,
4. compare against the sequential-consistency oracle,
5. show that making the flag non-atomic re-introduces the relaxed outcome.

Run with:  python examples/quickstart.py
"""

from repro.core import FINAL_MODEL, ORIGINAL_MODEL
from repro.lang import (
    INT32,
    IfEq,
    Load,
    Program,
    Register,
    Store,
    Thread,
    TypedAccess,
    allowed_outcomes,
    new_shared_array_buffer,
    new_typed_array,
    outcome_allowed,
    sc_outcomes,
)


def message_passing(atomic_flag: bool) -> Program:
    """The Fig. 1 program, with the flag accesses atomic or not."""
    sab = new_shared_array_buffer("b", 8)
    x = new_typed_array("x", sab, INT32)
    msg, flag = TypedAccess(x, 0), TypedAccess(x, 1)
    return Program(
        name="fig1" if atomic_flag else "fig1-relaxed",
        buffers=(sab,),
        threads=(
            Thread((Store(msg, 3), Store(flag, 5, atomic=atomic_flag))),
            Thread(
                (
                    Load(Register("r0"), flag, atomic=atomic_flag),
                    IfEq(Register("r0"), 5, then=(Load(Register("r1"), msg),)),
                )
            ),
        ),
    )


def show(title, outcomes):
    print(f"\n{title}")
    for outcome in sorted(outcomes, key=lambda o: sorted(o.items())):
        print("   ", dict(sorted(outcome.items())))


def main() -> None:
    program = message_passing(atomic_flag=True)
    print(program.describe())

    show("Outcomes allowed by the corrected JavaScript model:",
         allowed_outcomes(program, FINAL_MODEL))
    show("Outcomes of the sequential-consistency oracle:", sc_outcomes(program))

    stale = {"1:r0": 5, "1:r1": 0}
    print("\nIs the stale outcome", stale, "observable?")
    print("   corrected model :", outcome_allowed(program, stale, FINAL_MODEL))
    print("   original  model :", outcome_allowed(program, stale, ORIGINAL_MODEL))

    relaxed = message_passing(atomic_flag=False)
    print("\nWith a non-atomic flag the relaxed behaviour appears:")
    print("   corrected model :", outcome_allowed(relaxed, stale, FINAL_MODEL))


if __name__ == "__main__":
    main()
